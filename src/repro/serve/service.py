"""The concurrent inference service: sessions, admission, tiers, drain.

Two classes:

* :class:`EngineSessionPool` — N calibrated
  :class:`~repro.inference.engine.InferenceEngine` sessions over *one*
  junction tree (rerooted once, shared read-only) and *one* thread-safe
  :class:`~repro.inference.cache.QueryCache`, checked out LIFO so the
  warmest session (hottest incremental state) is reused first.
* :class:`InferenceService` — a bounded worker pool in front of the
  session pool.  Requests are admitted into a bounded priority queue
  (full queue → stale answer if the caller allows one, else explicit
  shed), coalesced single-flight on their canonical evidence signature,
  executed through a breaker-guarded tier cascade (process → threads →
  serial) with cooperative end-to-end deadlines, and always answered —
  exactly, stalely, or with an explicit refusal.  ``drain()`` stops
  admissions, finishes in-flight work and returns a
  :class:`~repro.serve.report.ServiceReport`.

The correctness contract the chaos soak (``tools/soak.py``) enforces:
any response with ``status == "ok"`` matches a fresh serial propagation
to 1e-9, no matter which tier served it or what faults were injected.
"""

from __future__ import annotations

import io
import queue
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.inference.cache import QueryCache
from repro.inference.engine import InferenceEngine
from repro.integrity.checksum import TornWriteError
from repro.obs.metrics import latency_percentiles
from repro.obs.span import CAT_SERVE
from repro.obs.tracer import Tracer
from repro.sched.faults import TaskExecutionError, check_state_health
from repro.sched.serial import SerialExecutor
from repro.serve.breaker import CircuitBreaker
from repro.serve.report import ServiceReport
from repro.serve.request import (
    STATUS_DEADLINE,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SHED,
    STATUS_STALE,
    QueryRequest,
    QueryResponse,
    ServiceClosed,
)

# Sentinel priority: sorts after every client priority, so drain sentinels
# are consumed only once the real queue is empty.
_SENTINEL_PRIORITY = 1 << 30


@dataclass
class _SessionHealth:
    """Per-session strike record (keyed by ``id(engine)`` in the pool)."""

    consecutive_failures: int = 0
    flagged: bool = False
    reason: str = ""


class EngineSessionPool:
    """A fixed pool of calibrated engine sessions over one junction tree.

    Build once (tree construction and Algorithm-1 rerooting run a single
    time), then hand sessions out to service workers: every session is an
    independent :class:`~repro.inference.engine.InferenceEngine` with its
    own propagation state, but all share the rerooted tree (read-only)
    and one thread-safe :class:`~repro.inference.cache.QueryCache`, so a
    marginal computed by any session answers repeats on every session.

    The pool is *self-healing*: callers report per-session outcomes via
    :meth:`note_success` / :meth:`note_failure` / :meth:`flag_recycle`,
    and a session that is flagged (poisoned state, torn write, watchdog
    intervention) or accumulates ``recycle_threshold`` consecutive
    failures is **recycled on release** — restored from the in-memory
    baseline checkpoint captured by :meth:`capture_checkpoint` (or fully
    recalibrated when no baseline exists) instead of re-entering LIFO
    rotation with a suspect state.
    """

    def __init__(
        self,
        engines: Sequence[InferenceEngine],
        recycle_threshold: int = 2,
    ):
        if not engines:
            raise ValueError("session pool needs at least one engine")
        if recycle_threshold < 1:
            raise ValueError("recycle_threshold must be >= 1")
        self.engines = list(engines)
        self.cache = self.engines[0].cache
        variables = set()
        for clique in self.engines[0].jt.cliques:
            variables.update(clique.variables)
        self.variables: List[int] = sorted(variables)
        # LIFO: the most recently returned session has the freshest
        # incremental state and the warmest caches.
        self._free: "queue.LifoQueue[InferenceEngine]" = queue.LifoQueue()
        for engine in self.engines:
            self._free.put(engine)
        # Self-healing machinery: per-session strike records, the
        # in-memory baseline checkpoint recycling restores from, and
        # recycle accounting (surfaced in ServiceReport).
        self.recycle_threshold = recycle_threshold
        self._health: Dict[int, _SessionHealth] = {
            id(engine): _SessionHealth() for engine in self.engines
        }
        self._health_lock = threading.Lock()
        self._baseline: Optional[bytes] = None
        self.recycles = 0
        self.recycles_from_checkpoint = 0
        self.recycle_events: List[str] = []
        # Lifecycle: a closed pool hands out no sessions and discards
        # (rather than requeues) sessions released after the close —
        # needed by the registry's eviction path, which may close a pool
        # while a late flight is still resolving.
        self._closed = False

    def capture_checkpoint(self) -> bool:
        """Snapshot the first session's calibrated state as the baseline.

        Recycled sessions warm-restart from this in-memory checkpoint
        (bit-identical to the captured calibration) instead of paying a
        full recalibration.  Returns False — and leaves recycling on the
        recalibrate fallback — if no session has propagated yet.
        """
        buf = io.BytesIO()
        try:
            self.engines[0].checkpoint(buf)
        except RuntimeError:
            return False
        self._baseline = buf.getvalue()
        return True

    def adopt_checkpoint(self, data: bytes) -> None:
        """Install an externally captured baseline checkpoint.

        The registry's rehydration path restores every session from an
        evicted model's retained checkpoint and then hands the same bytes
        back to the pool, so recycling keeps working without paying a
        fresh :meth:`capture_checkpoint`.
        """
        self._baseline = bytes(data)

    @property
    def baseline_checkpoint(self) -> Optional[bytes]:
        """The in-memory baseline recycles restore from (None if unset)."""
        return self._baseline

    def resident_bytes(self) -> int:
        """Approximate resident cost of this pool in bytes.

        Counts the shared tree's prior potentials once, each session's
        propagation-state tables (clique potentials, separators and
        message intermediates), and the baseline checkpoint blob.  This
        is the per-model cost the registry charges against its global
        memory budget.
        """
        jt = self.engines[0].jt
        total = sum(t.nbytes for t in jt.potentials.values())
        for engine in self.engines:
            state = getattr(engine, "_state", None)
            if state is not None:
                total += state.nbytes
        if self._baseline is not None:
            total += len(self._baseline)
        return total

    # -------------------------------------------------------------- #
    # Session health (reported by the service, acted on at release)
    # -------------------------------------------------------------- #

    def _record(self, engine: InferenceEngine) -> _SessionHealth:
        record = self._health.get(id(engine))
        if record is None:
            record = self._health[id(engine)] = _SessionHealth()
        return record

    def note_success(self, engine: InferenceEngine) -> None:
        """A served flight: clears the session's consecutive-failure run."""
        with self._health_lock:
            record = self._record(engine)
            record.consecutive_failures = 0

    def note_failure(
        self, engine: InferenceEngine, reason: str, poisoned: bool = False
    ) -> None:
        """A failed flight on this session.

        ``poisoned=True`` (health scan failed, torn write detected) flags
        the session for immediate recycling — its state cannot be
        trusted, and the next flight's incremental plan would build on
        it.  Plain failures only count toward ``recycle_threshold``.
        """
        with self._health_lock:
            record = self._record(engine)
            record.consecutive_failures += 1
            if poisoned or record.consecutive_failures >= self.recycle_threshold:
                record.flagged = True
                record.reason = reason

    def flag_recycle(self, engine: InferenceEngine, reason: str) -> None:
        """Unconditionally mark the session for recycling on release."""
        with self._health_lock:
            record = self._record(engine)
            record.flagged = True
            record.reason = reason

    def _maybe_recycle(self, engine: InferenceEngine) -> None:
        with self._health_lock:
            record = self._record(engine)
            if not record.flagged:
                return
            reason = record.reason
            record.consecutive_failures = 0
            record.flagged = False
            record.reason = ""
        self._recycle(engine, reason)

    def _recycle(self, engine: InferenceEngine, reason: str) -> None:
        """Restore a suspect session from the baseline (or recalibrate).

        Never raises: a session that cannot even recalibrate still
        returns to rotation (dropping it would shrink the pool and
        eventually deadlock checkout) — the next flight on it will fail
        loudly through the normal tier cascade rather than silently.
        """
        restored = False
        if self._baseline is not None:
            try:
                engine.restore(io.BytesIO(self._baseline))
                restored = True
            except Exception:
                restored = False
        if not restored:
            try:
                engine.set_evidence({})
                engine.propagate(incremental=False)
            except Exception:
                pass
        with self._health_lock:
            self.recycles += 1
            if restored:
                self.recycles_from_checkpoint += 1
            self.recycle_events.append(reason)

    @classmethod
    def from_junction_tree(
        cls,
        junction_tree,
        sessions: int = 2,
        cache_size: int = 512,
        warm: bool = True,
    ) -> "EngineSessionPool":
        """Build ``sessions`` engines sharing one rerooted tree and cache."""
        if sessions < 1:
            raise ValueError("sessions must be >= 1")
        first = InferenceEngine(
            junction_tree, reroot=True, cache_size=cache_size
        )
        engines = [first]
        for _ in range(sessions - 1):
            engines.append(
                InferenceEngine(first.jt, reroot=False, cache_size=cache_size)
            )
        shared = QueryCache(cache_size)
        for engine in engines:
            engine.cache = shared
        if warm:
            # Calibrate the no-evidence prior once per session, so the
            # first client request pays incremental cost, not a cold run.
            for engine in engines:
                engine.propagate()
        pool = cls(engines)
        if warm:
            # The warm prior is the recycling baseline: poisoned sessions
            # warm-restart from this checkpoint instead of recalibrating.
            pool.capture_checkpoint()
        return pool

    @classmethod
    def from_network(
        cls,
        bn,
        sessions: int = 2,
        cache_size: int = 512,
        warm: bool = True,
    ) -> "EngineSessionPool":
        from repro.jt.build import junction_tree_from_network

        return cls.from_junction_tree(
            junction_tree_from_network(bn),
            sessions=sessions,
            cache_size=cache_size,
            warm=warm,
        )

    @property
    def num_sessions(self) -> int:
        return len(self.engines)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the pool's sessions; idempotent and race-safe.

        Needed for *dynamic* pool ownership (the registry evicts cold
        models, tearing their pools down while the service above them may
        still be resolving a late flight):

        * calling :meth:`close` twice is a no-op the second time;
        * a :meth:`session` release racing the close never requeues its
          engine — the release path re-checks ``closed`` and discards,
          so no session object outlives the pool's budget accounting;
        * checkout after close refuses with
          :class:`~repro.serve.request.ServiceClosed` instead of
          blocking forever on an empty queue.

        The baseline checkpoint and the free queue are dropped so the
        pool's table memory is reclaimable; the ``engines`` list survives
        (emptied) only as a tombstone for accounting code.
        """
        with self._health_lock:
            if self._closed:
                return
            self._closed = True
            self._baseline = None
            # Drain whatever is checked in right now, under the same
            # lock the release path requeues under: a racing release
            # either requeues before this drain (and is drained) or
            # observes _closed afterwards (and discards).  Either way no
            # session survives in the free queue.
            while True:
                try:
                    self._free.get_nowait()
                except queue.Empty:
                    break
        self.engines = []

    def _release(self, engine: InferenceEngine) -> None:
        """Return one session to rotation — or drop it if the pool closed."""
        with self._health_lock:
            if self._closed:
                return
        self._maybe_recycle(engine)
        with self._health_lock:
            # close() may have landed while the recycle ran; a closed
            # pool must not resurrect the session into the (drained)
            # free queue.
            if self._closed:
                return
            self._free.put(engine)

    @contextmanager
    def session(self, timeout: Optional[float] = None):
        """Check a session out (blocking), return it on exit.

        A session flagged as suspect while checked out is recycled
        (baseline restore, else recalibration) *before* it re-enters the
        LIFO rotation — a poisoned state is never handed to the next
        flight.
        """
        if self._closed:
            raise ServiceClosed("session pool is closed")
        engine = self._free.get(timeout=timeout)
        try:
            yield engine
        finally:
            self._release(engine)


class _Future:
    """Minimal thread-safe one-shot result cell (concurrent.futures-lite).

    ``concurrent.futures.Future`` would work, but this keeps the
    dependency surface to ``threading`` and makes the resolved-exactly-
    once invariant explicit.
    """

    __slots__ = ("_event", "_response", "_lock", "_callbacks")

    def __init__(self):
        self._event = threading.Event()
        self._response: Optional[QueryResponse] = None
        # resolve() must be atomic: the watchdog races the worker that a
        # stuck flight eventually un-sticks, and exactly one may win.
        self._lock = threading.Lock()
        self._callbacks: List = []

    def resolve(self, response: QueryResponse) -> None:
        with self._lock:
            if self._response is not None:
                return
            self._response = response
            callbacks, self._callbacks = self._callbacks, []
        self._event.set()
        for callback in callbacks:
            try:
                callback(response)
            except Exception:
                pass  # a broken observer must not strand the client

    def add_done_callback(self, callback) -> None:
        """Run ``callback(response)`` on resolution (immediately if done).

        The registry layer uses this to release tenant-admission charges
        and tally per-tenant outcomes without polling futures.  Callbacks
        run on the resolving thread; exceptions are swallowed.
        """
        with self._lock:
            if self._response is None:
                self._callbacks.append(callback)
                return
            response = self._response
        try:
            callback(response)
        except Exception:
            pass

    def result(self, timeout: Optional[float] = None) -> QueryResponse:
        if not self._event.wait(timeout):
            raise TimeoutError("response not ready")
        return self._response

    def done(self) -> bool:
        return self._event.is_set()


@dataclass
class _Member:
    """One request riding a flight (the leader is members[0])."""

    request: QueryRequest
    future: _Future
    admitted_ns: int
    deadline_at: Optional[float]


@dataclass
class _Flight:
    """A single-flight group: all requests sharing one evidence signature.

    While ``open`` (queued) the flight is joinable — new submissions with
    the same signature attach as members instead of enqueueing.  The
    serving worker closes the flight when it begins serving, so late
    joiners start a fresh flight rather than racing resolution.
    """

    signature: Tuple
    evidence: object
    members: List[_Member] = field(default_factory=list)
    open: bool = True


class InferenceService:
    """Thread-safe concurrent inference over a pool of engine sessions.

    Parameters
    ----------
    pool:
        The :class:`EngineSessionPool` that owns the calibrated sessions.
    primary:
        Optional breaker-guarded fast tier (typically a
        :class:`~repro.sched.process.ProcessSharedMemoryExecutor`).
    fallback:
        Thread-tier executor used when the primary is absent, skipped by
        an open breaker, or failing; defaults to a fresh
        :class:`~repro.sched.collaborative.CollaborativeExecutor` — pass
        a :class:`~repro.sched.serial.SerialExecutor` to keep the
        service single-tier.  A serial last resort always backstops the
        cascade.
    workers:
        Service worker threads; defaults to ``pool.num_sessions`` (more
        would only contend on session checkout).
    max_queue:
        Admission bound: requests beyond this many queued flights are
        shed (or served stale, when the request allows it).
    breaker:
        The :class:`~repro.serve.breaker.CircuitBreaker` guarding the
        primary tier; a default one is built when the primary is set.
    own_executors:
        Close the primary/fallback executors (their worker pools) during
        :meth:`drain`.  Leave True unless the executors are shared.
    max_batch:
        Micro-batching width: a worker that dequeues a flight drains up
        to this many *compatible* queued flights (same model, not yet
        fully expired) and serves them through one batched propagation,
        splitting responses per case.  Requests keep their individual
        deadlines and priorities; a case whose posteriors come back
        non-finite is quarantined with an explicit failure while the
        rest of the batch is answered exactly.  ``1`` (default) disables
        micro-batching.
    watchdog_grace:
        When set, a service-owned watchdog thread force-resolves any
        flight still unresolved ``watchdog_grace`` seconds past its
        propagation deadline (the worker is stuck — a wedged executor, a
        hung worker process) as DeadlineExceeded, and flags the flight's
        session for recycling.  ``None`` (default) disables the
        watchdog.  Deadline-free flights are never force-resolved.
    watchdog_interval:
        Poll period of the watchdog thread, seconds.
    """

    def __init__(
        self,
        pool: EngineSessionPool,
        primary=None,
        fallback=None,
        workers: Optional[int] = None,
        max_queue: int = 32,
        breaker: Optional[CircuitBreaker] = None,
        own_executors: bool = True,
        max_batch: int = 1,
        watchdog_grace: Optional[float] = None,
        watchdog_interval: float = 0.05,
    ):
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if watchdog_grace is not None and watchdog_grace < 0:
            raise ValueError("watchdog_grace must be >= 0")
        self.max_batch = max_batch
        self.pool = pool
        self.primary = primary
        if fallback is None:
            from repro.sched.collaborative import CollaborativeExecutor

            fallback = CollaborativeExecutor(num_threads=2)
        self.fallback = fallback
        self.breaker = breaker or CircuitBreaker()
        self.own_executors = own_executors
        self.max_queue = max_queue

        self._queue: "queue.PriorityQueue" = queue.PriorityQueue()
        self._seq = 0
        self._flights: Dict[Tuple, _Flight] = {}
        self._flights_lock = threading.Lock()
        self._queued = 0  # live flights in the queue (admission accounting)

        self._stats_lock = threading.Lock()
        self._counts: Dict[str, int] = {
            "submitted": 0,
            "served_ok": 0,
            "served_stale": 0,
            "coalesced": 0,
            "shed": 0,
            "stale_signature_miss": 0,
            "deadline_missed": 0,
            "failed": 0,
            "breaker_short_circuits": 0,
            "batches": 0,
            "batched_flights": 0,
            "single_flights": 0,
            "quarantined": 0,
            "watchdog_interventions": 0,
        }
        self._tier_counts: Dict[str, int] = {}
        self._queue_high_water = 0
        # Per-tenant / per-model response-status breakdowns (filled by
        # _finish from the request's tenant/model_id stamps; surfaced in
        # ServiceReport.per_tenant / per_model and aggregated across
        # services by the registry).
        self._tenant_status: Dict[str, Dict[str, int]] = {}
        self._model_status: Dict[str, Dict[str, int]] = {}

        # Last-known exact marginals, {var: (values, monotonic_ts, sig)} —
        # the degraded answer served on overload when the caller opted in.
        self._stale_store: Dict[int, Tuple[np.ndarray, float, Tuple]] = {}
        self._stale_lock = threading.Lock()

        self._tracer = Tracer()
        self._started_ns = time.perf_counter_ns()
        self._closed = False
        self._report: Optional[ServiceReport] = None
        self._lifecycle_lock = threading.Lock()

        # In-flight registry for the watchdog: token -> (members,
        # deadline_at, engine).  Entries exist only while a worker holds
        # a session for the flight.
        self._inflight: Dict[int, Tuple[List[_Member], Optional[float], InferenceEngine]] = {}
        self._inflight_lock = threading.Lock()
        self._inflight_seq = 0

        n_workers = workers if workers is not None else pool.num_sessions
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                args=(slot,),
                name=f"serve-worker-{slot}",
                daemon=True,
            )
            for slot in range(max(n_workers, 1))
        ]
        for thread in self._workers:
            thread.start()

        self.watchdog_grace = watchdog_grace
        self.watchdog_interval = watchdog_interval
        self._watchdog_stop = threading.Event()
        self._watchdog: Optional[threading.Thread] = None
        if watchdog_grace is not None:
            self._watchdog = threading.Thread(
                target=self._watchdog_loop,
                args=(len(self._workers),),
                name="serve-watchdog",
                daemon=True,
            )
            self._watchdog.start()

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #

    def _bump(self, key: str, n: int = 1) -> None:
        with self._stats_lock:
            self._counts[key] += n

    def submit(self, request: QueryRequest) -> _Future:
        """Admit one request; returns a future resolving to its response.

        Raises :class:`~repro.serve.request.ServiceClosed` once
        :meth:`drain` has begun.  Never blocks on a full queue: the
        overload path resolves the future immediately (stale or shed).
        """
        if self._closed:
            raise ServiceClosed("service is draining; no new requests")
        now = time.monotonic()
        deadline_at = (
            now + request.deadline if request.deadline is not None else None
        )
        member = _Member(
            request=request,
            future=_Future(),
            admitted_ns=time.perf_counter_ns(),
            deadline_at=deadline_at,
        )
        evidence = request.evidence()
        signature = evidence.signature()

        with self._flights_lock:
            # Re-check under the lock: drain() marks closed and enqueues
            # its sentinels while holding it, so anything admitted here is
            # guaranteed to be processed before the workers exit.
            if self._closed:
                raise ServiceClosed("service is draining; no new requests")
            self._bump("submitted")
            flight = self._flights.get(signature)
            if flight is not None and flight.open:
                flight.members.append(member)
                self._bump("coalesced")
                return member.future
            if self._queued >= self.max_queue:
                self._resolve_overload(member)
                return member.future
            flight = _Flight(signature, evidence, members=[member])
            self._flights[signature] = flight
            self._queued += 1
            self._queue_high_water = max(self._queue_high_water, self._queued)
            self._seq += 1
            self._queue.put((request.priority, self._seq, flight))
        return member.future

    def query(
        self,
        delta=None,
        vars=None,
        deadline: Optional[float] = None,
        priority: int = 0,
        max_staleness: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> QueryResponse:
        """Blocking convenience: submit and wait for the response."""
        future = self.submit(
            QueryRequest(
                delta=delta or {},
                vars=vars,
                deadline=deadline,
                priority=priority,
                max_staleness=max_staleness,
            )
        )
        return future.result(timeout)

    def _resolve_overload(self, member: _Member) -> None:
        """Full queue: serve a tolerated-stale answer or shed explicitly.

        A stale answer is a *dated* answer to the same question: every
        stale-store entry is stamped with the evidence signature it was
        computed under, and only entries whose signature equals this
        request's own conditioning may be served.  A young-enough entry
        under a different conditioning is a signature miss — counted in
        ``stale_signature_miss`` — and the request is shed instead of
        being handed another conditioning's marginals.
        """
        request = member.request
        if request.max_staleness is not None:
            needed = (
                [int(v) for v in request.vars]
                if request.vars is not None
                else self.pool.variables
            )
            signature = request.signature()
            now = time.monotonic()
            marginals: Dict[int, np.ndarray] = {}
            worst_age = 0.0
            signature_miss = False
            with self._stale_lock:
                for var in needed:
                    entry = self._stale_store.get(var)
                    if entry is None:
                        marginals = {}
                        break
                    values, ts, sig = entry
                    if sig != signature:
                        marginals = {}
                        signature_miss = True
                        break
                    age = now - ts
                    if age > request.max_staleness:
                        marginals = {}
                        break
                    worst_age = max(worst_age, age)
                    marginals[var] = values
            if signature_miss:
                self._bump("stale_signature_miss")
            if marginals:
                self._bump("served_stale")
                self._finish(
                    member,
                    QueryResponse(
                        status=STATUS_STALE,
                        marginals=marginals,
                        executor="stale-store",
                        stale_age=worst_age,
                    ),
                )
                return
        self._bump("shed")
        self._finish(
            member,
            QueryResponse(
                status=STATUS_SHED,
                error=f"admission queue full ({self.max_queue} flights)",
            ),
        )

    # ------------------------------------------------------------------ #
    # Workers
    # ------------------------------------------------------------------ #

    def _worker_loop(self, slot: int) -> None:
        buf = self._tracer.bind(slot)
        self._tracer.name_row(slot, f"serve-{slot}")
        while True:
            _prio, _seq, flight = self._queue.get()
            if flight is None:
                return
            with self._flights_lock:
                self._queued -= 1
            group = (
                self._collect_batch(flight)
                if self.max_batch > 1
                else [flight]
            )
            try:
                if len(group) == 1:
                    self._serve_flight(group[0])
                else:
                    self._serve_batch(group)
            except BaseException as exc:  # never strand a client
                for member_flight in group:
                    self._abort_flight(member_flight, exc)

    def _batch_compatible(self, flight: _Flight) -> bool:
        """Whether a queued flight may ride the current micro-batch.

        All flights share the model (one pool, one tree), so the only
        disqualifier is a flight whose every member has already expired —
        batching it would waste a batch column on a guaranteed
        deadline-missed response.
        """
        now = time.monotonic()
        with self._flights_lock:
            members = list(flight.members)
        return any(
            m.deadline_at is None or now < m.deadline_at for m in members
        )

    def _collect_batch(self, first: _Flight) -> List[_Flight]:
        """Drain up to ``max_batch - 1`` compatible queued flights.

        Incompatible flights (and any drain sentinel) go back on the
        queue under their original ``(priority, seq)`` keys, so ordering
        among the requests this worker does *not* take is preserved.
        """
        flights = [first]
        requeue = []
        while len(flights) < self.max_batch:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            flight = item[2]
            if flight is None:
                requeue.append(item)
                break
            if self._batch_compatible(flight):
                with self._flights_lock:
                    self._queued -= 1
                flights.append(flight)
            else:
                requeue.append(item)
        for item in requeue:
            self._queue.put(item)
        return flights

    def _close_flight(self, flight: _Flight) -> List[_Member]:
        """Stop accepting joiners; returns the final member snapshot."""
        with self._flights_lock:
            flight.open = False
            if self._flights.get(flight.signature) is flight:
                del self._flights[flight.signature]
            return list(flight.members)

    def _abort_flight(self, flight: _Flight, exc: BaseException) -> None:
        for member in self._close_flight(flight):
            if not member.future.done():
                self._bump("failed")
                self._finish(
                    member,
                    QueryResponse(
                        status=STATUS_FAILED,
                        error=f"{type(exc).__name__}: {exc}",
                    ),
                )

    def _finish(self, member: _Member, response: QueryResponse) -> None:
        """Stamp latency, record the serve span, resolve the future."""
        end_ns = time.perf_counter_ns()
        request = member.request
        response.latency = (end_ns - member.admitted_ns) * 1e-9
        if response.model_id is None:
            response.model_id = request.model_id
        if not response.tenant:
            response.tenant = request.tenant
        with self._stats_lock:
            bucket = self._tenant_status.setdefault(request.tenant or "", {})
            bucket[response.status] = bucket.get(response.status, 0) + 1
            if request.model_id:
                bucket = self._model_status.setdefault(request.model_id, {})
                bucket[response.status] = bucket.get(response.status, 0) + 1
        name = f"request:{response.status}"
        if request.model_id or request.tenant:
            # Model/tenant-attributed serve spans: the prefix keeps the
            # latency-percentile extraction working, the suffix lets a
            # trace viewer group request lifecycles by route.
            name += f"@{request.model_id or '-'}/{request.tenant or '-'}"
        self._tracer.current().span(
            name, CAT_SERVE, member.admitted_ns, end_ns
        )
        member.future.resolve(response)

    # ------------------------------------------------------------------ #
    # Watchdog (stuck-flight detection)
    # ------------------------------------------------------------------ #

    def _register_inflight(
        self,
        members: List[_Member],
        deadline_at: Optional[float],
        engine: InferenceEngine,
    ) -> int:
        with self._inflight_lock:
            self._inflight_seq += 1
            token = self._inflight_seq
            self._inflight[token] = (members, deadline_at, engine)
            return token

    def _unregister_inflight(self, token: int) -> None:
        with self._inflight_lock:
            self._inflight.pop(token, None)

    def _watchdog_loop(self, row: int) -> None:
        """Force-resolve flights stuck past deadline + grace.

        A worker wedged inside a tier (hung worker process, livelocked
        executor) holds its members' futures hostage; clients blocked in
        ``future.result()`` would wait forever.  The watchdog resolves
        overdue members as DeadlineExceeded (idempotent — if the worker
        un-sticks later, its resolution is a no-op) and flags the
        session for recycling, since a flight that had to be torn loose
        may leave the session state half-written.
        """
        buf = self._tracer.bind(row)
        self._tracer.name_row(row, "serve-watchdog")
        while not self._watchdog_stop.wait(self.watchdog_interval):
            now = time.monotonic()
            overdue = []
            with self._inflight_lock:
                for token, (members, deadline_at, engine) in list(
                    self._inflight.items()
                ):
                    if deadline_at is None:
                        continue
                    if now >= deadline_at + self.watchdog_grace:
                        overdue.append((token, members, engine))
                        del self._inflight[token]
            for token, members, engine in overdue:
                pending = [m for m in members if not m.future.done()]
                if not pending:
                    continue
                self._bump("watchdog_interventions")
                buf.instant(f"watchdog:stuck-flight#{token}", CAT_SERVE)
                self.pool.flag_recycle(
                    engine, "watchdog: flight stuck past deadline+grace"
                )
                for member in pending:
                    self._bump("deadline_missed")
                    self._finish(
                        member,
                        QueryResponse(
                            status=STATUS_DEADLINE,
                            error=(
                                "watchdog: flight stuck past deadline "
                                f"(+{self.watchdog_grace:.3f}s grace)"
                            ),
                        ),
                    )

    # ------------------------------------------------------------------ #
    # Serving one flight
    # ------------------------------------------------------------------ #

    def _union_vars(self, members: Sequence[_Member]) -> Optional[List[int]]:
        """Variables the flight must answer; None means all of them."""
        union: set = set()
        for member in members:
            if member.request.vars is None:
                return None
            union.update(int(v) for v in member.request.vars)
        return sorted(union)

    def _cached_answer(
        self, signature: Tuple, members: Sequence[_Member]
    ) -> Optional[Dict[int, np.ndarray]]:
        """All requested marginals already cached → skip propagation."""
        needed = self._union_vars(members)
        if needed is None:
            needed = self.pool.variables
        results: Dict[int, np.ndarray] = {}
        for var in needed:
            values = self.pool.cache.get_marginal(signature, var)
            if values is None:
                return None
            results[var] = values
        return results

    def _tiers(self) -> List[Tuple[str, object, bool]]:
        """(name, executor, breaker_guarded) cascade for one flight."""
        tiers: List[Tuple[str, object, bool]] = []
        if self.primary is not None:
            if self.breaker.allow():
                tiers.append(
                    (type(self.primary).__name__, self.primary, True)
                )
            else:
                self._bump("breaker_short_circuits")
        if self.fallback is not None:
            tiers.append((type(self.fallback).__name__, self.fallback, False))
        if not tiers or not isinstance(tiers[-1][1], SerialExecutor):
            tiers.append(("SerialExecutor", SerialExecutor(), False))
        return tiers

    def _serve_flight(self, flight: _Flight) -> None:
        members = self._close_flight(flight)

        # Expired-before-start requests answer without costing a session.
        now = time.monotonic()
        if all(
            m.deadline_at is not None and now >= m.deadline_at
            for m in members
        ):
            self._resolve_deadline(members)
            return

        # Fast path: a previous flight with this signature already cached
        # every marginal this one needs.
        cached = self._cached_answer(flight.signature, members)
        if cached is not None:
            self._bump("single_flights")
            self._resolve_ok(members, cached, "cache")
            return

        self._serve_members(flight, members)

    def _serve_members(self, flight: _Flight, members: List[_Member]) -> None:
        deadline_at = self._flight_deadline(members)
        tiers = self._tiers()
        # A half-open breaker reserved a probe slot in _tiers(); if a
        # deadline aborts the flight before the guarded tier is even
        # attempted, hand the slot back so probing is not starved.
        guarded_unattempted = bool(tiers) and tiers[0][2]
        last_error: Optional[BaseException] = None
        with self.pool.session() as engine:
            token = self._register_inflight(members, deadline_at, engine)
            try:
                engine.set_evidence(flight.evidence)
                incremental = True
                for name, executor, guarded in tiers:
                    if (
                        deadline_at is not None
                        and time.monotonic() >= deadline_at
                    ):
                        if guarded_unattempted:
                            self.breaker.release_probe()
                        self._resolve_deadline(members)
                        return
                    if guarded:
                        guarded_unattempted = False
                    try:
                        state = engine.propagate(
                            executor=executor,
                            incremental=incremental,
                            deadline=deadline_at,
                        )
                    except TaskExecutionError as exc:
                        if exc.phase == "deadline":
                            self._resolve_deadline(members)
                            return
                        last_error = exc
                        # A torn write means the shared arena (and any
                        # state built from it) cannot be trusted:
                        # recycle the session before its next checkout.
                        self.pool.note_failure(
                            engine, str(exc),
                            poisoned=isinstance(exc, TornWriteError),
                        )
                        if guarded:
                            self.breaker.record_failure(str(exc))
                        # A failed tier may have mutated tables the
                        # previous state shared with the incremental
                        # plan: rebuild.
                        incremental = False
                        continue
                    except Exception as exc:
                        if (
                            deadline_at is not None
                            and time.monotonic() >= deadline_at
                        ):
                            self._resolve_deadline(members)
                            return
                        last_error = exc
                        self.pool.note_failure(engine, str(exc))
                        if guarded:
                            self.breaker.record_failure(str(exc))
                        incremental = False
                        continue
                    health = check_state_health(state)
                    if not health.healthy:
                        last_error = RuntimeError(
                            f"unhealthy result from {name}: "
                            f"{health.summary()}"
                        )
                        # The engine's cached state *is* the poisoned
                        # one — the next flight's incremental plan would
                        # build on it.  Flag for recycling.
                        self.pool.note_failure(
                            engine, health.summary(), poisoned=True
                        )
                        if guarded:
                            self.breaker.record_failure(health.summary())
                        incremental = False
                        continue
                    if guarded:
                        self.breaker.record_success()
                    self.pool.note_success(engine)
                    union = self._union_vars(members)
                    results = engine.query(
                        vars=union if union is not None else None
                    )
                    self._record_stale(flight.signature, results)
                    self._bump("single_flights")
                    self._resolve_ok(members, results, name)
                    return
            finally:
                self._unregister_inflight(token)

        # Every tier failed (serial included — pathological evidence or a
        # corrupted tree): explicit failure, never a silent wrong answer.
        error = (
            f"{type(last_error).__name__}: {last_error}"
            if last_error is not None
            else "no executor tier available"
        )
        for member in members:
            if member.future.done():
                continue
            self._bump("failed")
            self._finish(
                member, QueryResponse(status=STATUS_FAILED, error=error)
            )

    # ------------------------------------------------------------------ #
    # Serving a micro-batch of flights
    # ------------------------------------------------------------------ #

    def _serve_batch(self, flights: Sequence[_Flight]) -> None:
        """One batched propagation answering several flights at once.

        Per-flight deadlines and priorities are preserved: expired
        flights resolve as deadline-missed, cache-served flights never
        cost a batch column, and each member's response is split out of
        its own batch case.  A case whose posteriors come back
        non-finite is quarantined — its members get an explicit failure,
        nothing poisoned is cached or served — while the rest of the
        batch is answered exactly.
        """
        live: List[Tuple[_Flight, List[_Member]]] = []
        now = time.monotonic()
        for flight in flights:
            members = self._close_flight(flight)
            if all(
                m.deadline_at is not None and now >= m.deadline_at
                for m in members
            ):
                self._resolve_deadline(members)
                continue
            cached = self._cached_answer(flight.signature, members)
            if cached is not None:
                self._bump("single_flights")
                self._resolve_ok(members, cached, "cache")
                continue
            live.append((flight, members))
        if not live:
            return
        if len(live) == 1:
            flight, members = live[0]
            self._serve_members(flight, members)
            return

        # The batch's propagation budget must accommodate every flight;
        # members with earlier deadlines get explicit refusals at
        # resolution, exactly like coalesced members of a single flight.
        deadline_at: Optional[float] = 0.0
        for _flight, members in live:
            flight_deadline = self._flight_deadline(members)
            if flight_deadline is None:
                deadline_at = None
                break
            deadline_at = max(deadline_at, flight_deadline)

        union: Optional[set] = set()
        for _flight, members in live:
            flight_union = self._union_vars(members)
            if flight_union is None:
                union = None
                break
            union.update(flight_union)
        needed = sorted(union) if union is not None else self.pool.variables

        tiers = self._tiers()
        guarded_unattempted = bool(tiers) and tiers[0][2]
        last_error: Optional[BaseException] = None
        all_members = [m for _flight, members in live for m in members]
        with self.pool.session() as engine:
            token = self._register_inflight(all_members, deadline_at, engine)
            try:
                for name, executor, guarded in tiers:
                    if (
                        deadline_at is not None
                        and time.monotonic() >= deadline_at
                    ):
                        if guarded_unattempted:
                            self.breaker.release_probe()
                        for _flight, members in live:
                            self._resolve_deadline(members)
                        return
                    if guarded:
                        guarded_unattempted = False
                    try:
                        state = engine.propagate_batch(
                            [flight.evidence for flight, _members in live],
                            executor=executor,
                            deadline=deadline_at,
                        )
                    except TaskExecutionError as exc:
                        if exc.phase == "deadline":
                            for _flight, members in live:
                                self._resolve_deadline(members)
                            return
                        last_error = exc
                        self.pool.note_failure(
                            engine, str(exc),
                            poisoned=isinstance(exc, TornWriteError),
                        )
                        if guarded:
                            self.breaker.record_failure(str(exc))
                        continue
                    except Exception as exc:
                        if (
                            deadline_at is not None
                            and time.monotonic() >= deadline_at
                        ):
                            for _flight, members in live:
                                self._resolve_deadline(members)
                            return
                        last_error = exc
                        self.pool.note_failure(engine, str(exc))
                        if guarded:
                            self.breaker.record_failure(str(exc))
                        continue

                    # One batch-aware health scan attributes non-finite
                    # or underflowed tables to their batch columns —
                    # no per-case, per-variable re-scanning.
                    report = check_state_health(state)
                    poisoned = report.poisoned_columns()
                    likelihoods = np.asarray(state.likelihood()).reshape(-1)
                    finite = np.isfinite(likelihoods)
                    healthy = [
                        bool(finite[i]) and i not in poisoned
                        for i in range(len(live))
                    ]
                    if not any(healthy):
                        last_error = RuntimeError(
                            f"every batch case from {name} was non-finite"
                        )
                        self.pool.note_failure(
                            engine, "fully poisoned batch result"
                        )
                        if guarded:
                            self.breaker.record_failure(
                                "fully poisoned batch result"
                            )
                        continue
                    rows = {var: state.marginal(var) for var in needed}
                    if guarded:
                        self.breaker.record_success()
                    if all(healthy):
                        # propagate_batch leaves the session's cached
                        # single-case state untouched, so a partially
                        # quarantined batch is a strike, not a poisoning.
                        self.pool.note_success(engine)
                    else:
                        self.pool.note_failure(
                            engine,
                            f"batch columns quarantined: "
                            f"{sorted(i for i in range(len(live)) if not healthy[i])}",
                        )
                    for i, (flight, members) in enumerate(live):
                        if not healthy[i]:
                            self._bump("quarantined")
                            for member in members:
                                if member.future.done():
                                    continue
                                self._bump("failed")
                                self._finish(
                                    member,
                                    QueryResponse(
                                        status=STATUS_FAILED,
                                        error=(
                                            "batch case quarantined: "
                                            "non-finite posterior"
                                        ),
                                    ),
                                )
                            continue
                        results = {var: rows[var][i] for var in needed}
                        for var, values in results.items():
                            self.pool.cache.put_marginal(
                                flight.signature, var, values
                            )
                        self.pool.cache.put_likelihood(
                            flight.signature, float(likelihoods[i])
                        )
                        self._record_stale(flight.signature, results)
                        self._bump("batched_flights")
                        self._resolve_ok(members, results, name, batched=True)
                    self._bump("batches")
                    return
            finally:
                self._unregister_inflight(token)

        error = (
            f"{type(last_error).__name__}: {last_error}"
            if last_error is not None
            else "no executor tier available"
        )
        for _flight, members in live:
            for member in members:
                if member.future.done():
                    continue
                self._bump("failed")
                self._finish(
                    member, QueryResponse(status=STATUS_FAILED, error=error)
                )

    @staticmethod
    def _flight_deadline(members: Sequence[_Member]) -> Optional[float]:
        """The propagation budget: generous enough for every member.

        ``None`` (unbounded) if any member is unbounded, else the latest
        member deadline — members whose own deadline lapses first get an
        explicit DeadlineExceeded at resolution.
        """
        deadline = 0.0
        for member in members:
            if member.deadline_at is None:
                return None
            deadline = max(deadline, member.deadline_at)
        return deadline

    def _record_stale(
        self, signature: Tuple, results: Dict[int, np.ndarray]
    ) -> None:
        ts = time.monotonic()
        with self._stale_lock:
            for var, values in results.items():
                self._stale_store[var] = (values, ts, signature)

    def _resolve_ok(
        self,
        members: Sequence[_Member],
        results: Dict[int, np.ndarray],
        tier: str,
        batched: bool = False,
    ) -> None:
        with self._stats_lock:
            self._tier_counts[tier] = self._tier_counts.get(tier, 0) + 1
        now = time.monotonic()
        for i, member in enumerate(members):
            if member.future.done():
                # The watchdog force-resolved this member while its
                # worker was stuck; the late result must not double-count.
                continue
            if member.deadline_at is not None and now >= member.deadline_at:
                self._bump("deadline_missed")
                self._finish(
                    member,
                    QueryResponse(
                        status=STATUS_DEADLINE,
                        error="deadline passed before resolution",
                    ),
                )
                continue
            wanted = member.request.vars
            marginals = (
                dict(results)
                if wanted is None
                else {int(v): results[int(v)] for v in wanted}
            )
            self._bump("served_ok")
            self._finish(
                member,
                QueryResponse(
                    status=STATUS_OK,
                    marginals=marginals,
                    executor=tier,
                    coalesced=i > 0,
                    batched=batched,
                ),
            )

    def _resolve_deadline(self, members: Sequence[_Member]) -> None:
        for member in members:
            if member.future.done():
                continue
            self._bump("deadline_missed")
            self._finish(
                member,
                QueryResponse(
                    status=STATUS_DEADLINE,
                    error="end-to-end deadline exceeded",
                ),
            )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def drain(self, timeout: Optional[float] = None) -> ServiceReport:
        """Stop admissions, finish queued work, report.

        Idempotent: later calls return the same report.  ``timeout``
        bounds the per-worker join (None waits indefinitely).
        """
        with self._lifecycle_lock:
            if self._report is not None:
                return self._report
            self._closed = True
            with self._flights_lock:
                for _ in self._workers:
                    self._seq += 1
                    self._queue.put((_SENTINEL_PRIORITY, self._seq, None))
            for thread in self._workers:
                thread.join(timeout)
            self._watchdog_stop.set()
            if self._watchdog is not None:
                self._watchdog.join(timeout)
            if self.own_executors:
                for executor in (self.primary, self.fallback):
                    close = getattr(executor, "close", None)
                    if callable(close):
                        close()
            self._report = self._build_report()
            return self._report

    def _build_report(self) -> ServiceReport:
        trace = self._tracer.finalize(executor="InferenceService")
        served_spans = [
            span.duration
            for span in trace.spans
            if span.cat == CAT_SERVE
            and span.name.startswith(("request:ok", "request:stale"))
        ]
        with self._stats_lock:
            counts = dict(self._counts)
            tier_counts = dict(self._tier_counts)
            high_water = self._queue_high_water
            per_tenant = {t: dict(c) for t, c in self._tenant_status.items()}
            per_model = {m: dict(c) for m, c in self._model_status.items()}
        return ServiceReport(
            submitted=counts["submitted"],
            served_ok=counts["served_ok"],
            served_stale=counts["served_stale"],
            coalesced=counts["coalesced"],
            shed=counts["shed"],
            stale_signature_miss=counts["stale_signature_miss"],
            deadline_missed=counts["deadline_missed"],
            failed=counts["failed"],
            breaker_short_circuits=counts["breaker_short_circuits"],
            batches=counts["batches"],
            batched_flights=counts["batched_flights"],
            single_flights=counts["single_flights"],
            quarantined=counts["quarantined"],
            watchdog_interventions=counts["watchdog_interventions"],
            session_recycles=getattr(self.pool, "recycles", 0),
            session_recycles_from_checkpoint=getattr(
                self.pool, "recycles_from_checkpoint", 0
            ),
            per_tenant=per_tenant,
            per_model=per_model,
            tier_counts=tier_counts,
            breaker_transitions=list(self.breaker.transitions),
            latency=latency_percentiles(served_spans, points=(50, 90, 99)),
            wall_seconds=(time.perf_counter_ns() - self._started_ns) * 1e-9,
            queue_high_water=high_water,
            trace=trace,
        )

    def __enter__(self) -> "InferenceService":
        return self

    def __exit__(self, *exc) -> None:
        self.drain()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"InferenceService(sessions={self.pool.num_sessions}, "
            f"workers={len(self._workers)}, max_queue={self.max_queue}, "
            f"breaker={self.breaker.state})"
        )
