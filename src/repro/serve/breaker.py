"""Thread-safe circuit breaker guarding the process-executor tier.

The process tier is the fastest way to answer a query and the most
expensive way to fail one: a crashed worker pool costs a pool restart,
and a pool that keeps crashing (OOM killer, cgroup limits, a poisoned
shared segment) costs a restart *per request* while delivering nothing.
The breaker converts that repeated-failure pattern into a cheap local
decision — after ``failure_threshold`` consecutive failures the breaker
*opens* and requests route straight to the thread tier; after
``reset_timeout`` seconds it *half-opens* and lets ``half_open_probes``
requests through to test recovery, closing again on the first success.

All transitions are recorded with timestamps and causes so the
:class:`~repro.serve.report.ServiceReport` can replay the breaker's
history after :meth:`~repro.serve.service.InferenceService.drain`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, List

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass
class BreakerTransition:
    """One state change, with the clock reading and the cause."""

    at: float
    from_state: str
    to_state: str
    reason: str

    def __str__(self) -> str:
        return f"{self.from_state}->{self.to_state} ({self.reason})"


class CircuitBreaker:
    """Consecutive-failure breaker with half-open probing.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that open the breaker.
    reset_timeout:
        Seconds an open breaker waits before half-opening.
    half_open_probes:
        Probe requests admitted while half-open; the first success closes
        the breaker, the first failure re-opens it (pending probes keep
        their reserved slots — their verdicts just arrive after the
        transition and are ignored by then).
    clock:
        Injectable monotonic clock, for deterministic tests.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout: float = 1.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self.transitions: List[BreakerTransition] = []

    # ------------------------------------------------------------------ #

    def _transition(self, to_state: str, reason: str) -> None:
        """Record and apply a state change; caller holds the lock."""
        self.transitions.append(
            BreakerTransition(self._clock(), self._state, to_state, reason)
        )
        self._state = to_state
        if to_state == OPEN:
            self._opened_at = self._clock()
            self._failures = 0
        elif to_state == HALF_OPEN:
            self._probes_in_flight = 0
        elif to_state == CLOSED:
            self._failures = 0

    @property
    def state(self) -> str:
        """Current state; an expired open window reads as half-open."""
        with self._lock:
            if (
                self._state == OPEN
                and self._clock() - self._opened_at >= self.reset_timeout
            ):
                self._transition(HALF_OPEN, "reset timeout elapsed")
            return self._state

    @property
    def opens(self) -> int:
        """How many times the breaker has opened so far."""
        with self._lock:
            return sum(1 for t in self.transitions if t.to_state == OPEN)

    def allow(self) -> bool:
        """May the guarded tier be attempted right now?

        Open → half-open promotion happens here (time-based), and a
        half-open ``allow()`` reserves one probe slot, so concurrent
        callers cannot stampede a recovering pool.
        """
        with self._lock:
            if self._state == OPEN:
                if self._clock() - self._opened_at >= self.reset_timeout:
                    self._transition(HALF_OPEN, "reset timeout elapsed")
                else:
                    return False
            if self._state == HALF_OPEN:
                if self._probes_in_flight >= self.half_open_probes:
                    return False
                self._probes_in_flight += 1
                return True
            return True

    def release_probe(self) -> None:
        """Hand back a half-open probe slot whose attempt was abandoned
        (e.g. the request's deadline expired before the guarded tier
        ran), so an inconclusive probe cannot starve recovery."""
        with self._lock:
            if self._state == HALF_OPEN and self._probes_in_flight > 0:
                self._probes_in_flight -= 1

    def record_success(self) -> None:
        """A guarded attempt succeeded: close (half-open) or stay closed."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._transition(CLOSED, "probe succeeded")
            elif self._state == CLOSED:
                self._failures = 0

    def record_failure(self, reason: str = "failure") -> None:
        """A guarded attempt failed: count toward opening, or re-open."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._transition(OPEN, f"probe failed: {reason}")
            elif self._state == CLOSED:
                self._failures += 1
                if self._failures >= self.failure_threshold:
                    self._transition(
                        OPEN,
                        f"{self._failures} consecutive failures "
                        f"(last: {reason})",
                    )
            # OPEN: a stale verdict from before the transition; ignore.

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"threshold={self.failure_threshold}, "
            f"reset={self.reset_timeout}s)"
        )
