"""The drain-time accounting record of one service lifetime.

:meth:`~repro.serve.service.InferenceService.drain` returns a
:class:`ServiceReport`: every admission decision, every tier that served,
every breaker transition, and latency percentiles derived from the
service's own span tracer (``cat="serve"`` request-lifecycle spans) — the
numbers an operator needs to answer "did the service refuse work, and
what did the work it accepted cost?".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.serve.breaker import BreakerTransition


@dataclass
class ServiceReport:
    """Everything one drained :class:`~repro.serve.service.InferenceService`
    did.

    ``served_ok`` counts every exact response (coalesced followers
    included; ``coalesced`` says how many of them rode another request's
    propagation).  ``latency`` holds nearest-rank percentiles (seconds)
    over served responses, computed from the tracer's serve spans.
    """

    submitted: int = 0
    served_ok: int = 0
    served_stale: int = 0
    coalesced: int = 0
    shed: int = 0
    # Overloaded requests that found a young-enough stale entry computed
    # under a *different* conditioning: refused (counted inside ``shed``)
    # rather than served another evidence signature's marginals.
    stale_signature_miss: int = 0
    deadline_missed: int = 0
    failed: int = 0
    breaker_short_circuits: int = 0
    # Streaming accounting (zero/empty for a plain request service):
    # subscribed streams, evidence ticks served/refused, window rolls
    # paid, and per-stream status breakdowns filled at drain.
    streams: int = 0
    ticks_ok: int = 0
    ticks_overflowed: int = 0
    ticks_deadline: int = 0
    ticks_failed: int = 0
    window_rolls: int = 0
    per_stream: Dict[str, Dict[str, int]] = field(default_factory=dict)
    # Durability accounting (zero without a durable root): journal
    # records replayed into rebuilt sessions at recovery, unacked ticks
    # recovery could not re-apply (dropped with a durable ack), and how
    # many recovery passes ran (construction-time for the streaming
    # service, per adopted model for the registry).
    replayed_ticks: int = 0
    dropped_unacked: int = 0
    recoveries: int = 0
    # Micro-batching accounting: how many batched propagations ran, how
    # many flights they carried, how many flights went through the
    # single-flight path, and how many batch cases were quarantined for
    # non-finite posteriors (their requests got explicit failures).
    batches: int = 0
    batched_flights: int = 0
    single_flights: int = 0
    quarantined: int = 0
    # Self-healing accounting: sessions recycled by the pool instead of
    # re-entering rotation with a suspect state (and how many of those
    # warm-restarted from the baseline checkpoint rather than paying a
    # full recalibration), plus stuck flights the watchdog force-resolved.
    session_recycles: int = 0
    session_recycles_from_checkpoint: int = 0
    watchdog_interventions: int = 0
    # Per-tenant / per-model response-status breakdowns, e.g.
    # {"tenant-a": {"ok": 10, "shed": 2}}.  Filled by the service from
    # request stamps; the registry aggregates them across every
    # per-model service it drained.
    per_tenant: Dict[str, Dict[str, int]] = field(default_factory=dict)
    per_model: Dict[str, Dict[str, int]] = field(default_factory=dict)
    # Registry-level accounting (zero/empty for a plain single-model
    # service): cache economics of the model registry and the typed
    # refusals its admission layer issued.
    model_hits: int = 0
    model_misses: int = 0
    compiles: int = 0
    rehydrations: int = 0
    evictions: int = 0
    shed_by_quota: int = 0
    compile_deadline_refusals: int = 0
    peak_resident_bytes: int = 0
    memory_budget: Optional[int] = None
    tier_counts: Dict[str, int] = field(default_factory=dict)
    breaker_transitions: List[BreakerTransition] = field(default_factory=list)
    latency: Dict[str, float] = field(default_factory=dict)
    wall_seconds: float = 0.0
    queue_high_water: int = 0
    trace: Optional[object] = None  # PropagationTrace of the serve spans

    @property
    def served(self) -> int:
        """Responses that carried marginals (exact or stale)."""
        return self.served_ok + self.served_stale

    @property
    def refused(self) -> int:
        """Explicit refusals: shed, deadline-missed, or all-tiers-failed."""
        return self.shed + self.deadline_missed + self.failed

    @property
    def shed_rate(self) -> float:
        """Refusals as a fraction of everything submitted."""
        return self.refused / self.submitted if self.submitted else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (benchmark emission); the trace is omitted."""
        return {
            "submitted": self.submitted,
            "served_ok": self.served_ok,
            "served_stale": self.served_stale,
            "coalesced": self.coalesced,
            "shed": self.shed,
            "stale_signature_miss": self.stale_signature_miss,
            "deadline_missed": self.deadline_missed,
            "failed": self.failed,
            "breaker_short_circuits": self.breaker_short_circuits,
            "batches": self.batches,
            "batched_flights": self.batched_flights,
            "single_flights": self.single_flights,
            "quarantined": self.quarantined,
            "session_recycles": self.session_recycles,
            "session_recycles_from_checkpoint": (
                self.session_recycles_from_checkpoint
            ),
            "watchdog_interventions": self.watchdog_interventions,
            "per_tenant": {t: dict(c) for t, c in self.per_tenant.items()},
            "per_model": {m: dict(c) for m, c in self.per_model.items()},
            "model_hits": self.model_hits,
            "model_misses": self.model_misses,
            "compiles": self.compiles,
            "rehydrations": self.rehydrations,
            "evictions": self.evictions,
            "shed_by_quota": self.shed_by_quota,
            "compile_deadline_refusals": self.compile_deadline_refusals,
            "peak_resident_bytes": self.peak_resident_bytes,
            "memory_budget": self.memory_budget,
            "streams": self.streams,
            "ticks_ok": self.ticks_ok,
            "ticks_overflowed": self.ticks_overflowed,
            "ticks_deadline": self.ticks_deadline,
            "ticks_failed": self.ticks_failed,
            "window_rolls": self.window_rolls,
            "replayed_ticks": self.replayed_ticks,
            "dropped_unacked": self.dropped_unacked,
            "recoveries": self.recoveries,
            "per_stream": {s: dict(c) for s, c in self.per_stream.items()},
            "tier_counts": dict(self.tier_counts),
            "breaker_transitions": [str(t) for t in self.breaker_transitions],
            "latency": dict(self.latency),
            "wall_seconds": self.wall_seconds,
            "queue_high_water": self.queue_high_water,
            "shed_rate": self.shed_rate,
        }

    def format(self) -> str:
        """Multi-line human rendering (``repro serve-demo`` prints this)."""
        lines = [
            f"submitted          {self.submitted:8d}"
            f"   over {self.wall_seconds:.2f} s wall",
            f"served exact       {self.served_ok:8d}"
            f"   ({self.coalesced} coalesced)",
            f"served stale       {self.served_stale:8d}",
            f"shed (overload)    {self.shed:8d}"
            + (
                f"   ({self.stale_signature_miss} stale-signature misses)"
                if self.stale_signature_miss
                else ""
            ),
            f"deadline missed    {self.deadline_missed:8d}",
            f"failed             {self.failed:8d}",
            f"shed rate          {self.shed_rate:8.1%}",
            f"queue high water   {self.queue_high_water:8d}",
        ]
        if self.batches or self.batched_flights or self.quarantined:
            lines.append(
                f"micro-batched      {self.batched_flights:8d}"
                f"   flights in {self.batches} batches"
                f" ({self.single_flights} single,"
                f" {self.quarantined} quarantined)"
            )
        if self.session_recycles or self.watchdog_interventions:
            lines.append(
                f"sessions recycled  {self.session_recycles:8d}"
                f"   ({self.session_recycles_from_checkpoint} from checkpoint,"
                f" {self.watchdog_interventions} watchdog interventions)"
            )
        if self.model_misses or self.model_hits or self.evictions:
            lines.append(
                f"registry           {self.model_hits} hits, "
                f"{self.model_misses} misses ({self.compiles} compiles, "
                f"{self.rehydrations} rehydrations), "
                f"{self.evictions} evictions"
            )
            budget = (
                f" of {self.memory_budget / 1e6:g} MB budget"
                if self.memory_budget
                else ""
            )
            lines.append(
                f"peak resident      {self.peak_resident_bytes / 1e6:8.3g} MB"
                f"{budget}"
            )
        if self.streams:
            lines.append(
                f"streams            {self.streams:8d}"
                f"   ({self.ticks_ok} ticks ok,"
                f" {self.ticks_overflowed} overflowed,"
                f" {self.ticks_deadline} deadline,"
                f" {self.ticks_failed} failed,"
                f" {self.window_rolls} window rolls)"
            )
        if self.recoveries or self.replayed_ticks or self.dropped_unacked:
            lines.append(
                f"recovered          {self.replayed_ticks:8d}"
                f"   ticks replayed in {self.recoveries} recoveries"
                f" ({self.dropped_unacked} unacked dropped)"
            )
        if self.per_stream:
            lines.append("per-stream:")
            for stream in sorted(self.per_stream):
                counts = self.per_stream[stream]
                per = ", ".join(
                    f"{status} {counts[status]}"
                    for status in sorted(counts)
                )
                lines.append(f"  {stream:<16s} {per}")
        if self.shed_by_quota or self.compile_deadline_refusals:
            lines.append(
                f"typed refusals     {self.shed_by_quota:8d}"
                f"   quota, {self.compile_deadline_refusals} compile-deadline"
            )
        if self.per_model:
            lines.append("per-model:")
            for model in sorted(self.per_model):
                counts = self.per_model[model]
                per = ", ".join(
                    f"{status} {counts[status]}"
                    for status in sorted(counts)
                )
                lines.append(f"  {model:<16s} {per}")
        if self.per_tenant and (
            len(self.per_tenant) > 1 or "" not in self.per_tenant
        ):
            lines.append("per-tenant:")
            for tenant in sorted(self.per_tenant):
                counts = self.per_tenant[tenant]
                per = ", ".join(
                    f"{status} {counts[status]}"
                    for status in sorted(counts)
                )
                lines.append(f"  {tenant or '(anon)':<16s} {per}")
        if self.latency:
            per = "  ".join(
                f"{name} {value * 1e3:.2f} ms"
                for name, value in sorted(self.latency.items())
            )
            lines.append(f"latency            {per}")
        if self.tier_counts:
            per = ", ".join(
                f"{name} {count}"
                for name, count in sorted(self.tier_counts.items())
            )
            lines.append(f"served by          {per}")
        if self.breaker_short_circuits:
            lines.append(
                f"breaker skips      {self.breaker_short_circuits:8d}"
            )
        if self.breaker_transitions:
            lines.append("breaker history:")
            for t in self.breaker_transitions:
                lines.append(f"  t={t.at:9.3f}  {t}")
        return "\n".join(lines)
