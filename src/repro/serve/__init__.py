"""repro.serve — the concurrent inference service layer.

Everything below the service (engines, executors, the junction tree) is a
library a single caller drives to completion; this package is the layer
that makes it *operable* under many concurrent callers: an
:class:`InferenceService` owning a pool of calibrated engine sessions
(:class:`EngineSessionPool`), with bounded admission, request coalescing,
end-to-end deadlines, a :class:`CircuitBreaker` around the process tier,
stale-tolerant load shedding and a graceful ``drain()`` returning a
:class:`ServiceReport`.  See ``docs/serving.md``.
"""

from repro.serve.breaker import BreakerTransition, CircuitBreaker
from repro.serve.report import ServiceReport
from repro.serve.request import (
    STATUS_DEADLINE,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SHED,
    STATUS_STALE,
    CompileDeadlineExceeded,
    DeadlineExceeded,
    ModelNotFound,
    Overloaded,
    QueryRequest,
    QueryResponse,
    ServiceClosed,
    ServiceError,
    StreamClosed,
    StreamOverflow,
    TenantQuotaExceeded,
)
from repro.serve.service import EngineSessionPool, InferenceService
from repro.serve.streaming import StreamHandle, StreamingService, TickResponse

__all__ = [
    "CompileDeadlineExceeded",
    "ModelNotFound",
    "TenantQuotaExceeded",
    "BreakerTransition",
    "CircuitBreaker",
    "ServiceReport",
    "STATUS_DEADLINE",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_SHED",
    "STATUS_STALE",
    "DeadlineExceeded",
    "Overloaded",
    "QueryRequest",
    "QueryResponse",
    "ServiceClosed",
    "ServiceError",
    "EngineSessionPool",
    "InferenceService",
    "StreamClosed",
    "StreamOverflow",
    "StreamHandle",
    "StreamingService",
    "TickResponse",
]
