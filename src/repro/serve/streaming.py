"""Streaming DBN filtering as a service: subscribe, push ticks, read posteriors.

:class:`StreamingService` serves many concurrent
:class:`~repro.streaming.FilteringSession` streams through the same
operability machinery as :class:`~repro.serve.service.InferenceService`:
a bounded worker pool, explicit typed refusals, a span tracer
(``cat="stream"`` tick lifecycles) and an idempotent ``drain()``
returning a :class:`~repro.serve.report.ServiceReport` with streaming
sections.

The contract per tick mirrors the request service's: **exact or
explicit**.  An ``ok`` :class:`TickResponse` carries posteriors equal to
an offline unrolled-network propagation over every tick applied so far
(to 1e-9); everything else is a typed refusal whose evidence was *not*
applied — overflowed and refused ticks never corrupt the stream's
filter.  Backpressure is per stream: each stream owns a bounded pending
queue (``max_pending``), and a full queue refuses new ticks immediately
(``kind="stream-overflow"``) instead of blocking the producer or
starving other streams.  Ticks of one stream are processed strictly in
admission order by at most one worker at a time; different streams
progress in parallel.

With a ``durable_root``, the service is additionally **crash-durable**:
every admitted tick is journaled to a per-stream write-ahead log
(:class:`~repro.durability.journal.TickJournal`) *before* it executes,
every outcome is journaled after it resolves, and a freshly constructed
service on the same root replays the journals through
:class:`~repro.durability.recovery.RecoveryManager` before accepting
traffic — acked posteriors are exactly-once (replay reproduces them
bit-for-bit), unacked ticks are at-least-once internally.  The
sequence-number assignment and all journal writes happen on the one
worker serving the stream, so the journal order *is* the admission
order.
"""

from __future__ import annotations

import json
import os
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Sequence

import numpy as np

from repro.durability.journal import TickJournal, atomic_write_text
from repro.durability.recovery import RecoveryManager, RecoveryReport
from repro.obs.metrics import latency_percentiles
from repro.obs.span import CAT_STREAM
from repro.obs.tracer import Tracer
from repro.sched.faults import InjectedCrash
from repro.serve.report import ServiceReport
from repro.serve.request import (
    STATUS_DEADLINE,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SHED,
    _KIND_ERRORS,
    _STATUS_ERRORS,
    ServiceClosed,
)
from repro.serve.service import _Future
from repro.streaming.session import (
    FilteringSession,
    TickDeadline,
    TickFailed,
)


@dataclass
class TickResponse:
    """The service's answer to one pushed tick.

    ``marginals`` maps *slice-template* variable ids to their posterior
    at the tick's time when ``status == "ok"``; refusals carry no
    marginals, and their evidence was not applied to the stream.
    """

    stream: str
    status: str
    t: int = -1  # absolute tick time; -1 for refusals (time not advanced)
    marginals: Dict[int, np.ndarray] = field(default_factory=dict)
    latency: float = 0.0
    rolled: bool = False
    incremental: bool = False
    error: Optional[str] = None
    kind: Optional[str] = None  # "stream-overflow" | "stream-closed" | None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def raise_for_status(self) -> "TickResponse":
        """Raise the matching typed refusal unless :attr:`ok`."""
        exc = _KIND_ERRORS.get(self.kind) or _STATUS_ERRORS.get(self.status)
        if exc is not None and not self.ok:
            raise exc(self.error or self.status)
        return self


@dataclass
class _TickJob:
    delta: Dict[int, object]
    deadline_at: Optional[float]
    future: _Future
    admitted_ns: int


class StreamHandle:
    """One subscribed stream: its session, pending queue and update feed."""

    def __init__(
        self,
        name: str,
        session: FilteringSession,
        query_vars: Optional[Sequence[int]],
        max_pending: int,
        journal: Optional[TickJournal] = None,
    ):
        self.name = name
        self.session = session
        self.query_vars = (
            [int(v) for v in query_vars] if query_vars is not None else None
        )
        self.max_pending = max_pending
        self.journal = journal
        # Next WAL sequence number; touched only by the single worker
        # currently serving this stream (and by recovery, pre-traffic).
        self.next_seq = journal.next_seq if journal is not None else 0
        self.pending: "deque[_TickJob]" = deque()
        self.scheduled = False
        self.closed = False
        self.counts: Dict[str, int] = {}
        self.window_rolls = 0
        self.updates_queue: "queue.Queue[Optional[TickResponse]]" = (
            queue.Queue()
        )
        self._sentinel_sent = False

    def _count(self, status: str) -> None:
        self.counts[status] = self.counts.get(status, 0) + 1


class StreamingService:
    """Concurrent online-filtering service over one DBN template.

    Parameters
    ----------
    dbn:
        The :class:`~repro.bn.dbn.DynamicBayesianNetwork` every stream
        filters (prior and transition CPTs set).
    window / retire:
        Default :class:`~repro.streaming.FilteringSession` window
        geometry; overridable per :meth:`subscribe`.
    workers:
        Worker threads shared by every stream.  One stream is served by
        at most one worker at a time (ticks are ordered), so more
        workers than active streams buys nothing.
    max_pending:
        Per-stream tick-queue bound — the backpressure knob.  A full
        queue refuses pushes with ``kind="stream-overflow"``.
    executor_factory:
        Zero-argument callable building the executor one stream's
        propagations run on (called once per subscribe); ``None`` runs
        serial.  This is where the chaos soak injects faulty executors.
    default_deadline:
        Per-tick deadline (seconds from push) applied when
        :meth:`push_tick` gives none; ``None`` means unbounded.
    durable_root:
        Directory the service journals to and recovers from; ``None``
        keeps the service purely in-memory (the pre-durability
        behavior).  On construction any streams already durable under
        the root are rebuilt (journal replay) *before* the service
        accepts traffic; :attr:`recovery_report` describes what was
        replayed.
    fault_plan:
        Optional :class:`~repro.sched.faults.FaultPlan` wiring
        deterministic crash points (``crash_after_journal_append``,
        ``crash_before_ack``, ``torn_append``) into the journal path;
        an injected crash kills the serving worker silently, simulating
        ``SIGKILL`` at that exact byte (:attr:`crashed` turns true).
    """

    def __init__(
        self,
        dbn,
        window: int = 8,
        retire: Optional[int] = None,
        workers: int = 2,
        max_pending: int = 8,
        executor_factory=None,
        default_deadline: Optional[float] = None,
        durable_root: Optional[str] = None,
        fault_plan=None,
    ):
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.dbn = dbn
        self.window = window
        self.retire = retire
        self.max_pending = max_pending
        self.executor_factory = executor_factory
        self.default_deadline = default_deadline
        self.durable_root = durable_root
        self.fault_plan = fault_plan

        self._streams: Dict[str, StreamHandle] = {}
        self._lock = threading.Lock()
        self._ready: "queue.Queue[Optional[StreamHandle]]" = queue.Queue()
        self._counts = {
            "submitted": 0,
            "ticks_ok": 0,
            "ticks_overflowed": 0,
            "ticks_deadline": 0,
            "ticks_failed": 0,
            "ticks_closed": 0,
            "window_rolls": 0,
            "replayed_ticks": 0,
            "dropped_unacked": 0,
            "recoveries": 0,
        }
        self._tracer = Tracer()
        self._started_ns = time.perf_counter_ns()
        self._closed = False
        self._report: Optional[ServiceReport] = None
        self._lifecycle_lock = threading.Lock()
        self._seq = 0
        self._crash_event = threading.Event()
        self._recovery: Optional[RecoveryReport] = None
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                args=(slot,),
                name=f"stream-worker-{slot}",
                daemon=True,
            )
            for slot in range(max(workers, 1))
        ]
        for thread in self._workers:
            thread.start()
        if durable_root is not None:
            self._recover(durable_root)

    def _recover(self, root: str) -> None:
        """Rebuild durable streams from ``root`` before serving traffic."""
        streams_dir = os.path.join(root, "streams")
        os.makedirs(streams_dir, exist_ok=True)
        template = os.path.join(streams_dir, "_template.json")
        if not os.path.isfile(template):
            from repro.io.json_io import dbn_to_dict

            atomic_write_text(
                template, json.dumps(dbn_to_dict(self.dbn), separators=(",", ":"))
            )
        row = len(self._workers)
        buf = self._tracer.buffer(row)
        self._tracer.name_row(row, "recovery")
        report = RecoveryManager(root).recover_streams(self, span_buffer=buf)
        self._recovery = report
        with self._lock:
            self._counts["replayed_ticks"] += report.replayed_ticks
            self._counts["dropped_unacked"] += report.dropped_unacked
            if report.streams:
                self._counts["recoveries"] += 1

    @property
    def recovery_report(self) -> Optional[RecoveryReport]:
        """What construction-time recovery replayed (None without one)."""
        return self._recovery

    @property
    def crashed(self) -> bool:
        """Whether an injected crash point has killed a serving worker."""
        return self._crash_event.is_set()

    # ------------------------------------------------------------------ #
    # Subscription / admission
    # ------------------------------------------------------------------ #

    def _bump(self, key: str, n: int = 1) -> None:
        with self._lock:
            self._counts[key] += n

    def subscribe(
        self,
        name: Optional[str] = None,
        query_vars: Optional[Sequence[int]] = None,
        window: Optional[int] = None,
        retire: Optional[int] = None,
        max_pending: Optional[int] = None,
        incremental: bool = True,
    ) -> StreamHandle:
        """Open a new filtering stream; returns its handle.

        ``query_vars`` selects which slice variables each ok tick
        response reports (default: all of them).  The stream gets its
        own :class:`~repro.streaming.FilteringSession` — window state is
        per stream and never shared — and its own executor from
        ``executor_factory``.  Under a ``durable_root`` the stream also
        gets its own write-ahead journal (opening it truncates any torn
        tail from a previous crash) and a durable ``meta.json`` so a
        fresh process can re-subscribe it with the same geometry.
        """
        if self._closed:
            raise ServiceClosed("streaming service is draining")
        window = window if window is not None else self.window
        retire = retire if retire is not None else self.retire
        max_pending = (
            max_pending if max_pending is not None else self.max_pending
        )
        # Reserve the name first so session/journal construction (slow,
        # filesystem-touching) runs outside the lock without racing a
        # duplicate subscribe.
        with self._lock:
            if self._closed:
                raise ServiceClosed("streaming service is draining")
            if name is None:
                self._seq += 1
                name = f"stream-{self._seq}"
            if name in self._streams:
                raise ValueError(f"stream {name!r} already subscribed")
            self._streams[name] = None  # reservation
        journal = None
        try:
            executor = (
                self.executor_factory() if self.executor_factory else None
            )
            session = FilteringSession(
                self.dbn,
                window=window,
                retire=retire,
                executor=executor,
                incremental=incremental,
            )
            if self.durable_root is not None:
                stream_dir = os.path.join(self.durable_root, "streams", name)
                os.makedirs(stream_dir, exist_ok=True)
                atomic_write_text(
                    os.path.join(stream_dir, "meta.json"),
                    json.dumps(
                        {
                            "window": window,
                            "retire": retire,
                            "max_pending": max_pending,
                            "incremental": incremental,
                            "query_vars": (
                                [int(v) for v in query_vars]
                                if query_vars is not None
                                else None
                            ),
                        }
                    ),
                )
                journal = TickJournal(stream_dir, fault_plan=self.fault_plan)
            handle = StreamHandle(
                name, session, query_vars, max_pending, journal=journal
            )
        except BaseException:
            if journal is not None:
                journal.close()
            with self._lock:
                if self._streams.get(name) is None:
                    self._streams.pop(name, None)
            raise
        with self._lock:
            self._streams[name] = handle
        return handle

    def _handle(self, stream) -> StreamHandle:
        if isinstance(stream, StreamHandle):
            return stream
        with self._lock:
            handle = self._streams.get(stream)
        if handle is None:
            raise KeyError(f"unknown stream {stream!r}")
        return handle

    def push_tick(
        self,
        stream,
        delta: Optional[Mapping[int, object]] = None,
        deadline: Optional[float] = None,
    ) -> _Future:
        """Admit one evidence tick; returns a future of its TickResponse.

        Never blocks: a full per-stream queue (or a closed stream)
        resolves the future immediately with a typed refusal whose
        evidence was not applied.
        """
        if self._closed:
            raise ServiceClosed("streaming service is draining")
        handle = self._handle(stream)
        if deadline is None:
            deadline = self.default_deadline
        now = time.monotonic()
        job = _TickJob(
            delta=dict(delta or {}),
            deadline_at=now + deadline if deadline is not None else None,
            future=_Future(),
            admitted_ns=time.perf_counter_ns(),
        )
        refusal: Optional[TickResponse] = None
        with self._lock:
            self._counts["submitted"] += 1
            if self._closed or handle.closed:
                self._counts["ticks_closed"] += 1
                refusal = TickResponse(
                    stream=handle.name,
                    status=STATUS_SHED,
                    kind="stream-closed",
                    error=f"stream {handle.name!r} no longer accepts ticks",
                )
            elif len(handle.pending) >= handle.max_pending:
                self._counts["ticks_overflowed"] += 1
                handle._count("overflowed")
                refusal = TickResponse(
                    stream=handle.name,
                    status=STATUS_SHED,
                    kind="stream-overflow",
                    error=(
                        f"stream {handle.name!r} tick queue full "
                        f"({handle.max_pending} pending)"
                    ),
                )
            else:
                handle.pending.append(job)
                if not handle.scheduled:
                    handle.scheduled = True
                    self._ready.put(handle)
        if refusal is not None:
            self._resolve(handle, job, refusal)
        return job.future

    def close_stream(self, stream) -> None:
        """Stop admitting ticks to one stream; pending ticks still run.

        The stream's update feed ends (its :meth:`updates` iterator
        stops) once every already-admitted tick has resolved.
        """
        handle = self._handle(stream)
        with self._lock:
            handle.closed = True
            idle = not handle.pending and not handle.scheduled
            if idle and not handle._sentinel_sent:
                handle._sentinel_sent = True
            else:
                idle = False
        if idle:
            handle.updates_queue.put(None)

    def updates(self, stream, timeout: Optional[float] = None) -> Iterator[TickResponse]:
        """Yield this stream's tick responses in admission order.

        Ends when the stream is closed (or the service drained) and
        every admitted tick has resolved.  ``timeout`` bounds the wait
        for *each* response; expiry raises ``TimeoutError``.
        """
        handle = self._handle(stream)
        while True:
            try:
                item = handle.updates_queue.get(timeout=timeout)
            except queue.Empty:
                raise TimeoutError(
                    f"no tick response from stream {handle.name!r} "
                    f"within {timeout}s"
                ) from None
            if item is None:
                return
            yield item

    # ------------------------------------------------------------------ #
    # Workers
    # ------------------------------------------------------------------ #

    def _worker_loop(self, slot: int) -> None:
        self._tracer.bind(slot)
        self._tracer.name_row(slot, f"stream-{slot}")
        while True:
            handle = self._ready.get()
            if handle is None:
                return
            while True:
                with self._lock:
                    if not handle.pending:
                        handle.scheduled = False
                        send_sentinel = (
                            (handle.closed or self._closed)
                            and not handle._sentinel_sent
                        )
                        if send_sentinel:
                            handle._sentinel_sent = True
                        break
                    job = handle.pending.popleft()
                try:
                    self._serve_tick(handle, job)
                except InjectedCrash:
                    # A planned crash point fired: die exactly like
                    # SIGKILL would — no resolution, no sentinel, no
                    # cleanup.  Recovery (a fresh service on the same
                    # durable root) is the only way forward.
                    self._crash_event.set()
                    return
            if send_sentinel:
                handle.updates_queue.put(None)

    def _serve_tick(self, handle: StreamHandle, job: _TickJob) -> None:
        session = handle.session
        journal = handle.journal
        if (
            job.deadline_at is not None
            and time.monotonic() >= job.deadline_at
        ):
            # Expired before execution: nothing was journaled, nothing
            # needs to be — the evidence never touched the stream.
            self._bump("ticks_deadline")
            handle._count("deadline")
            self._resolve(
                handle,
                job,
                TickResponse(
                    stream=handle.name,
                    status=STATUS_DEADLINE,
                    error="deadline passed while the tick was queued",
                ),
            )
            return
        seq = -1
        if journal is not None:
            # Write-ahead: the tick is durable before it executes.  An
            # InjectedCrash from a planned crash point propagates to the
            # worker loop (simulated SIGKILL).
            seq = handle.next_seq
            handle.next_seq = seq + 1
            journal.append_tick(seq, job.delta)
        try:
            result = session.tick(job.delta, deadline=job.deadline_at)
        except TickDeadline as exc:
            self._bump("ticks_deadline")
            handle._count("deadline")
            self._resolve(
                handle,
                job,
                TickResponse(
                    stream=handle.name,
                    status=STATUS_DEADLINE,
                    error=str(exc),
                ),
            )
            if journal is not None:
                journal.append_ack(seq, "refused")
            return
        except Exception as exc:  # TickFailed and anything unexpected
            if not isinstance(exc, TickFailed):
                # An unclassified failure may have left the session
                # inconsistent; rebuild it from the durable records.
                try:
                    session.resync()
                except Exception:
                    pass
            self._bump("ticks_failed")
            handle._count("failed")
            self._resolve(
                handle,
                job,
                TickResponse(
                    stream=handle.name,
                    status=STATUS_FAILED,
                    error=f"{type(exc).__name__}: {exc}",
                ),
            )
            if journal is not None:
                journal.append_ack(seq, "refused")
            return
        marginals = session.posteriors(handle.query_vars, t=result.t)
        if result.rolled:
            self._bump("window_rolls")
            handle.window_rolls += 1
        self._bump("ticks_ok")
        handle._count("ok")
        self._resolve(
            handle,
            job,
            TickResponse(
                stream=handle.name,
                status=STATUS_OK,
                t=result.t,
                marginals=marginals,
                rolled=result.rolled,
                incremental=result.incremental,
            ),
        )
        if journal is not None:
            # The window between the client seeing the answer (above)
            # and the durable ack (below) is the at-least-once window:
            # a crash here leaves the tick unacked and recovery replays
            # it — idempotently, since posteriors depend only on the
            # evidence set.
            if self.fault_plan is not None and self.fault_plan.take_crash_before_ack(
                seq
            ):
                raise InjectedCrash(f"crash before ack of seq {seq}")
            journal.append_ack(seq, "ok", t=result.t)
            if result.rolled:
                # Retired slices just left the in-memory window; fold
                # them into the segment snapshot so replay cost stays
                # bounded by the window, not the stream's lifetime.
                journal.rotate(
                    session.snapshot_state(), next_seq=handle.next_seq
                )

    def _resolve(
        self, handle: StreamHandle, job: _TickJob, response: TickResponse
    ) -> None:
        end_ns = time.perf_counter_ns()
        response.latency = (end_ns - job.admitted_ns) * 1e-9
        self._tracer.current().span(
            f"tick:{response.status}@{handle.name}",
            CAT_STREAM,
            job.admitted_ns,
            end_ns,
        )
        job.future.resolve(response)
        handle.updates_queue.put(response)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def drain(self, timeout: Optional[float] = None) -> ServiceReport:
        """Stop admissions, finish every pending tick, report.

        Idempotent; the report's streaming sections (``streams``,
        ``ticks_*``, ``window_rolls``, ``per_stream``) ride next to the
        shared fields (``submitted``, latency percentiles, the span
        trace).
        """
        with self._lifecycle_lock:
            if self._report is not None:
                return self._report
            with self._lock:
                self._closed = True
                # Schedule every stream with pending work that no worker
                # currently owns, so nothing is stranded behind the
                # sentinels.
                for handle in self._streams.values():
                    if handle is None:
                        continue
                    if handle.pending and not handle.scheduled:
                        handle.scheduled = True
                        self._ready.put(handle)
            for _ in self._workers:
                self._ready.put(None)
            for thread in self._workers:
                thread.join(timeout)
            # Streams never scheduled after close still need their update
            # feeds terminated.
            for handle in list(self._streams.values()):
                if handle is None:
                    continue
                with self._lock:
                    send = not handle._sentinel_sent
                    if send:
                        handle._sentinel_sent = True
                if send:
                    handle.updates_queue.put(None)
            # Every pending tick has resolved (or the process is
            # simulating death); flush and release the journals.
            for handle in list(self._streams.values()):
                if handle is not None and handle.journal is not None:
                    handle.journal.close()
            self._report = self._build_report()
            return self._report

    def _build_report(self) -> ServiceReport:
        trace = self._tracer.finalize(executor="StreamingService")
        ok_spans = [
            span.duration
            for span in trace.spans
            if span.cat == CAT_STREAM and span.name.startswith("tick:ok")
        ]
        with self._lock:
            counts = dict(self._counts)
            per_stream = {
                name: dict(handle.counts)
                for name, handle in self._streams.items()
                if handle is not None
            }
            streams = len(per_stream)
        return ServiceReport(
            submitted=counts["submitted"],
            served_ok=counts["ticks_ok"],
            shed=counts["ticks_overflowed"] + counts["ticks_closed"],
            deadline_missed=counts["ticks_deadline"],
            failed=counts["ticks_failed"],
            streams=streams,
            ticks_ok=counts["ticks_ok"],
            ticks_overflowed=counts["ticks_overflowed"],
            ticks_deadline=counts["ticks_deadline"],
            ticks_failed=counts["ticks_failed"],
            window_rolls=counts["window_rolls"],
            replayed_ticks=counts["replayed_ticks"],
            dropped_unacked=counts["dropped_unacked"],
            recoveries=counts["recoveries"],
            per_stream=per_stream,
            latency=latency_percentiles(ok_spans, points=(50, 90, 99)),
            wall_seconds=(time.perf_counter_ns() - self._started_ns) * 1e-9,
            trace=trace,
        )

    def __enter__(self) -> "StreamingService":
        return self

    def __exit__(self, *exc) -> None:
        self.drain()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamingService(streams={len(self._streams)}, "
            f"workers={len(self._workers)}, max_pending={self.max_pending})"
        )
