"""Request/response model of the concurrent inference service.

A :class:`QueryRequest` is one self-contained unit of client work: the
evidence set to condition on (expressed as a delta over *no* evidence, so
requests are independent and coalescable), the variables whose posteriors
the client wants, an end-to-end deadline, a priority, and — optionally —
how stale an answer the client will tolerate when the service is
overloaded.  A :class:`QueryResponse` is always returned, even for shed
or timed-out requests: the service's contract is *exact answer or
explicit refusal*, never silence and never a silently-wrong posterior.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.inference.evidence import Evidence


class ServiceError(RuntimeError):
    """Base class for inference-service refusals."""


class Overloaded(ServiceError):
    """The admission queue was full and no acceptable stale answer existed."""


class DeadlineExceeded(ServiceError):
    """The request's end-to-end deadline passed before an exact answer."""


class ServiceClosed(ServiceError):
    """The service is draining (or drained) and admits no new requests."""


# Response statuses.  Everything except STATUS_OK / STATUS_STALE carries
# no marginals; STATUS_STALE carries *last-known* marginals whose age the
# client accepted up front via ``QueryRequest.max_staleness``.
STATUS_OK = "ok"
STATUS_STALE = "stale"
STATUS_SHED = "shed"
STATUS_DEADLINE = "deadline"
STATUS_FAILED = "failed"

_STATUS_ERRORS = {
    STATUS_SHED: Overloaded,
    STATUS_DEADLINE: DeadlineExceeded,
    STATUS_FAILED: ServiceError,
}


@dataclass
class QueryRequest:
    """One client query.

    Parameters
    ----------
    delta:
        Evidence to condition on, ``{variable: finding}`` where a finding
        is an ``int`` (hard state), a weight sequence (soft evidence) or
        ``None`` (explicitly unobserved — accepted for symmetry with
        :meth:`repro.inference.engine.InferenceEngine.query`).
    vars:
        Variables whose posterior marginals to return; ``None`` means
        every variable in the tree.
    deadline:
        End-to-end budget in *seconds from admission*; enforced while
        queued and cooperatively inside executors, so a request never
        silently overstays.  ``None`` means unbounded.
    priority:
        Lower runs first among queued requests (0 is the default tier).
    max_staleness:
        When the admission queue is full, accept a cached last-known
        answer at most this many seconds old instead of being shed;
        ``None`` (default) means never accept a stale answer.
    """

    delta: Mapping[int, object] = field(default_factory=dict)
    vars: Optional[Sequence[int]] = None
    deadline: Optional[float] = None
    priority: int = 0
    max_staleness: Optional[float] = None

    def evidence(self) -> Evidence:
        """Materialize the delta as a fresh :class:`Evidence` set."""
        ev = Evidence()
        for var, finding in (self.delta or {}).items():
            if finding is None:
                continue  # retract over empty evidence is a no-op
            if isinstance(finding, (int, np.integer)):
                ev.observe(int(var), int(finding))
            else:
                ev.observe_soft(int(var), finding)
        return ev

    def signature(self) -> Tuple:
        """Canonical fingerprint of the conditioning — the coalescing key."""
        return self.evidence().signature()


@dataclass
class QueryResponse:
    """The service's answer to one :class:`QueryRequest`.

    ``marginals`` is exact (matches a fresh serial propagation to within
    float noise) when ``status == "ok"``, and a dated last-known answer
    when ``status == "stale"`` (``stale_age`` says how dated).  All other
    statuses are explicit refusals with empty marginals and ``error`` set.
    """

    status: str
    marginals: Dict[int, np.ndarray] = field(default_factory=dict)
    latency: float = 0.0
    executor: str = ""
    coalesced: bool = False
    batched: bool = False  # answered by a micro-batched propagation
    stale_age: Optional[float] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the response carries usable marginals (exact or stale)."""
        return self.status in (STATUS_OK, STATUS_STALE)

    def raise_for_status(self) -> "QueryResponse":
        """Raise the matching :class:`ServiceError` unless :attr:`ok`."""
        exc = _STATUS_ERRORS.get(self.status)
        if exc is not None:
            raise exc(self.error or self.status)
        return self
