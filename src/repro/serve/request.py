"""Request/response model of the concurrent inference service.

A :class:`QueryRequest` is one self-contained unit of client work: the
evidence set to condition on (expressed as a delta over *no* evidence, so
requests are independent and coalescable), the variables whose posteriors
the client wants, an end-to-end deadline, a priority, and — optionally —
how stale an answer the client will tolerate when the service is
overloaded.  A :class:`QueryResponse` is always returned, even for shed
or timed-out requests: the service's contract is *exact answer or
explicit refusal*, never silence and never a silently-wrong posterior.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.inference.evidence import Evidence


class ServiceError(RuntimeError):
    """Base class for inference-service refusals."""


class Overloaded(ServiceError):
    """The admission queue was full and no acceptable stale answer existed."""


class DeadlineExceeded(ServiceError):
    """The request's end-to-end deadline passed before an exact answer."""


class ServiceClosed(ServiceError):
    """The service is draining (or drained) and admits no new requests."""


class ModelNotFound(ServiceError):
    """The request named a ``model_id`` the registry has never seen."""


class CompileDeadlineExceeded(DeadlineExceeded):
    """The model's compile could not finish inside the request deadline.

    Raised (or carried as ``QueryResponse.kind == "compile-deadline"``) by
    :class:`~repro.registry.ModelRegistry` when a cold model's compile
    pipeline — moralize, triangulate, reroot, calibrate — is estimated or
    observed to overrun the request's budget.  The refusal is immediate;
    the request never blocks the admission queue behind a compile it
    cannot outlive.
    """


class TenantQuotaExceeded(Overloaded):
    """The tenant is over its fair-share admission quota.

    Other tenants' requests are unaffected: this refusal exists precisely
    so one hot tenant saturating the service cannot starve the rest.
    """


class StreamOverflow(Overloaded):
    """A stream's bounded tick queue was full; the tick was refused.

    Backpressure is per stream: a slow consumer overflows only its own
    queue, and the refusal is explicit — the tick's evidence is *not*
    applied, so the stream's served posteriors remain an exact filter
    over the ticks that were accepted.
    """


class StreamClosed(ServiceError):
    """The stream (or the streaming service) no longer accepts ticks."""


# Response statuses.  Everything except STATUS_OK / STATUS_STALE carries
# no marginals; STATUS_STALE carries *last-known* marginals whose age the
# client accepted up front via ``QueryRequest.max_staleness``.
STATUS_OK = "ok"
STATUS_STALE = "stale"
STATUS_SHED = "shed"
STATUS_DEADLINE = "deadline"
STATUS_FAILED = "failed"

_STATUS_ERRORS = {
    STATUS_SHED: Overloaded,
    STATUS_DEADLINE: DeadlineExceeded,
    STATUS_FAILED: ServiceError,
}

# Finer-grained refusal kinds (set by the registry layer) mapped to their
# typed exceptions; ``raise_for_status`` prefers these over the plain
# status mapping so callers can catch e.g. CompileDeadlineExceeded
# separately from an ordinary missed deadline.
_KIND_ERRORS = {
    "compile-deadline": CompileDeadlineExceeded,
    "quota": TenantQuotaExceeded,
    "model-not-found": ModelNotFound,
    "stream-overflow": StreamOverflow,
    "stream-closed": StreamClosed,
}


@dataclass
class QueryRequest:
    """One client query.

    Parameters
    ----------
    delta:
        Evidence to condition on, ``{variable: finding}`` where a finding
        is an ``int`` (hard state), a weight sequence (soft evidence) or
        ``None`` (explicitly unobserved — accepted for symmetry with
        :meth:`repro.inference.engine.InferenceEngine.query`).
    vars:
        Variables whose posterior marginals to return; ``None`` means
        every variable in the tree.
    deadline:
        End-to-end budget in *seconds from admission*; enforced while
        queued and cooperatively inside executors, so a request never
        silently overstays.  ``None`` means unbounded.
    priority:
        Lower runs first among queued requests (0 is the default tier).
    max_staleness:
        When the admission queue is full, accept a cached last-known
        answer at most this many seconds old instead of being shed;
        ``None`` (default) means never accept a stale answer.
    model_id:
        Which registered model answers this request.  ``None`` (default)
        targets the single-model :class:`~repro.serve.InferenceService`
        directly, or the registry's default model when routed through a
        :class:`~repro.registry.RegistryService`.
    tenant:
        Accounting/fairness identity of the caller.  Per-tenant response
        counts land in :attr:`~repro.serve.report.ServiceReport.per_tenant`,
        and the registry's fair scheduler budgets admission by tenant.
        The empty string (default) is the anonymous shared tenant.
    """

    delta: Mapping[int, object] = field(default_factory=dict)
    vars: Optional[Sequence[int]] = None
    deadline: Optional[float] = None
    priority: int = 0
    max_staleness: Optional[float] = None
    model_id: Optional[str] = None
    tenant: str = ""

    def evidence(self) -> Evidence:
        """Materialize the delta as a fresh :class:`Evidence` set."""
        ev = Evidence()
        for var, finding in (self.delta or {}).items():
            if finding is None:
                continue  # retract over empty evidence is a no-op
            if isinstance(finding, (int, np.integer)):
                ev.observe(int(var), int(finding))
            else:
                ev.observe_soft(int(var), finding)
        return ev

    def signature(self) -> Tuple:
        """Canonical fingerprint of the conditioning — the coalescing key."""
        return self.evidence().signature()


@dataclass
class QueryResponse:
    """The service's answer to one :class:`QueryRequest`.

    ``marginals`` is exact (matches a fresh serial propagation to within
    float noise) when ``status == "ok"``, and a dated last-known answer
    when ``status == "stale"`` (``stale_age`` says how dated).  All other
    statuses are explicit refusals with empty marginals and ``error`` set.
    """

    status: str
    marginals: Dict[int, np.ndarray] = field(default_factory=dict)
    latency: float = 0.0
    executor: str = ""
    coalesced: bool = False
    batched: bool = False  # answered by a micro-batched propagation
    stale_age: Optional[float] = None
    error: Optional[str] = None
    # Finer refusal kind ("compile-deadline", "quota", "model-not-found")
    # set by the registry layer; None for plain service responses.
    kind: Optional[str] = None
    # Which model/tenant the response belongs to (stamped by the registry
    # router; empty for direct single-model service use).
    model_id: Optional[str] = None
    tenant: str = ""

    @property
    def ok(self) -> bool:
        """True when the response carries usable marginals (exact or stale)."""
        return self.status in (STATUS_OK, STATUS_STALE)

    def raise_for_status(self) -> "QueryResponse":
        """Raise the matching :class:`ServiceError` unless :attr:`ok`.

        Refusals stamped with a :attr:`kind` raise their finer-typed
        exception (:class:`CompileDeadlineExceeded`,
        :class:`TenantQuotaExceeded`, :class:`ModelNotFound`); everything
        else falls back to the status-level mapping.
        """
        exc = _KIND_ERRORS.get(self.kind) or _STATUS_ERRORS.get(self.status)
        if exc is not None and not self.ok:
            raise exc(self.error or self.status)
        return self
