"""repro — Parallel Evidence Propagation on Multicore Processors.

A full reproduction of Xia, Feng & Prasanna (PACT 2009): junction-tree
rerooting for critical-path minimization, DAG task decomposition of evidence
propagation, a collaborative work-sharing scheduler, and a calibrated
multicore simulator that regenerates the paper's evaluation figures.

Public API highlights
---------------------
* :class:`~repro.inference.engine.InferenceEngine` — end-to-end exact
  inference (network -> junction tree -> reroot -> task DAG -> propagate).
* :mod:`repro.bn` — Bayesian networks, moralization, triangulation.
* :mod:`repro.jt` — junction trees, synthetic generators, rerooting.
* :mod:`repro.sched` — serial/collaborative/baseline executors (threads)
  plus the shared-memory process executor (real multicore parallelism).
* :mod:`repro.simcore` — the discrete-event multicore simulator and
  scheduling policies used for the speedup experiments.
* :mod:`repro.obs` — span tracing for every executor, Chrome-trace/
  Perfetto export, derived metrics, and simulator calibration reports.
* :mod:`repro.serve` — the concurrent inference service: pooled engine
  sessions, admission control, deadlines, circuit breaking, drain.
* :mod:`repro.registry` — the sharded multi-tenant model registry:
  on-demand compilation, LRU eviction under a global memory budget,
  checkpoint rehydration, per-tenant weighted fair admission.
* :mod:`repro.durability` — crash-durable serving: write-ahead tick
  journals, crash-consistent durable model artifacts, and whole-process
  recovery back to the exact acknowledged state.
"""

from repro.bn.generation import chain_network, naive_bayes_network, random_network
from repro.bn.network import BayesianNetwork
from repro.inference.cache import QueryCache
from repro.inference.engine import InferenceEngine
from repro.inference.evidence import Evidence
from repro.inference.shafershenoy import ShaferShenoyEngine
from repro.jt.build import junction_tree_from_network
from repro.jt.generation import paper_tree, synthetic_tree, template_tree
from repro.jt.junction_tree import Clique, JunctionTree
from repro.jt.rerooting import reroot, reroot_optimally, select_root
from repro.potential.table import PotentialTable
from repro.sched.baselines import DataParallelExecutor, LevelParallelExecutor
from repro.sched.collaborative import CollaborativeExecutor
from repro.sched.process import ProcessSharedMemoryExecutor
from repro.sched.serial import SerialExecutor
from repro.sched.workstealing import WorkStealingExecutor
from repro.durability import (
    DurableModelStore,
    RecoveryManager,
    RecoveryReport,
    TickJournal,
)
from repro.obs.trace import PropagationTrace
from repro.obs.tracer import Tracer
from repro.registry import ModelRegistry, RegistryService, TenantScheduler
from repro.serve.breaker import CircuitBreaker
from repro.serve.report import ServiceReport
from repro.serve.request import QueryRequest, QueryResponse
from repro.serve.service import EngineSessionPool, InferenceService
from repro.tasks.dag import build_task_graph

__version__ = "1.0.0"

__all__ = [
    "BayesianNetwork",
    "random_network",
    "chain_network",
    "naive_bayes_network",
    "PotentialTable",
    "Clique",
    "JunctionTree",
    "junction_tree_from_network",
    "template_tree",
    "synthetic_tree",
    "paper_tree",
    "select_root",
    "reroot",
    "reroot_optimally",
    "build_task_graph",
    "Evidence",
    "QueryCache",
    "InferenceEngine",
    "ShaferShenoyEngine",
    "SerialExecutor",
    "CollaborativeExecutor",
    "LevelParallelExecutor",
    "DataParallelExecutor",
    "WorkStealingExecutor",
    "ProcessSharedMemoryExecutor",
    "Tracer",
    "PropagationTrace",
    "CircuitBreaker",
    "ServiceReport",
    "QueryRequest",
    "QueryResponse",
    "EngineSessionPool",
    "InferenceService",
    "ModelRegistry",
    "RegistryService",
    "TenantScheduler",
    "TickJournal",
    "RecoveryManager",
    "RecoveryReport",
    "DurableModelStore",
]
