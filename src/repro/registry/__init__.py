"""repro.registry — the sharded multi-tenant model registry.

The serve layer (:mod:`repro.serve`) operates *one* compiled model under
many concurrent callers; this package operates *many* models under many
tenants on one machine.  A :class:`ModelRegistry` compiles Bayesian
networks on demand (the full bn → moralize → triangulate → reroot →
calibrate → checkpoint pipeline, single-flight and deadline-aware),
keeps compiled pools resident under a global memory budget with LRU
eviction (evicted models retain a cheap stub — rerooted tree plus
baseline checkpoint — so the next miss *rehydrates* instead of
recompiling), and a :class:`RegistryService` routes requests by
``model_id`` with per-tenant weighted fair admission
(:class:`TenantScheduler`).  Every refusal is typed:
:class:`TenantQuotaExceeded`, :class:`CompileDeadlineExceeded`,
:class:`ModelNotFound`.  See ``docs/registry.md``.
"""

from repro.registry.compiler import (
    CompiledModel,
    compile_model,
    model_cost_bytes,
    rehydrate_model,
    stub_cost_bytes,
)
from repro.registry.fairness import TenantScheduler, TenantState
from repro.registry.registry import ModelRegistry, RegistryService
from repro.serve.request import (
    CompileDeadlineExceeded,
    ModelNotFound,
    TenantQuotaExceeded,
)

__all__ = [
    "CompiledModel",
    "compile_model",
    "model_cost_bytes",
    "rehydrate_model",
    "stub_cost_bytes",
    "TenantScheduler",
    "TenantState",
    "ModelRegistry",
    "RegistryService",
    "CompileDeadlineExceeded",
    "ModelNotFound",
    "TenantQuotaExceeded",
]
