"""Deadline-aware model compilation: the registry's expensive artifact.

Compiling a Bayesian network into a servable model is the full pipeline
the rest of the repo treats as one-shot setup: moralize, triangulate,
extract cliques, root a spanning tree, reroot it optimally (Algorithm 1),
calibrate one warm session per pool slot, and capture the baseline
integrity checkpoint recycling restores from.  Jensen & Jensen's optimal
junction trees make the case that this artifact is worth caching and
managing explicitly — :func:`compile_model` is the cacheable unit, and
:func:`rehydrate_model` is the cheap path back from an eviction: it
rebuilds sessions over the *retained* rerooted tree and restores each
from the retained checkpoint, skipping triangulation, rerooting and every
calibration propagation (restore beats recompile; see
``benchmarks/bench_checkpoint.py`` and ``bench_registry.py``).

Both entry points take an absolute ``deadline_at`` and check it
cooperatively between pipeline stages, refusing with the typed
:class:`~repro.serve.request.CompileDeadlineExceeded` instead of letting
a doomed request block the queue behind a compile it cannot outlive.
"""

from __future__ import annotations

import io
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.bn.network import BayesianNetwork
from repro.inference.cache import QueryCache
from repro.inference.engine import InferenceEngine
from repro.jt.build import junction_tree_from_network
from repro.jt.junction_tree import JunctionTree
from repro.serve.request import CompileDeadlineExceeded
from repro.serve.service import EngineSessionPool


@dataclass
class CompiledModel:
    """One servable model: warm session pool plus eviction metadata.

    ``cost_bytes`` is what the registry charges against its global memory
    budget while the model is resident; ``stub_cost_bytes`` is the
    retained cost after eviction (rerooted tree priors + baseline
    checkpoint — the rehydration fast path).  ``stages`` records the
    per-stage wall time of the compile for observability and for the
    registry's deadline estimates.
    """

    model_id: str
    pool: EngineSessionPool
    junction_tree: JunctionTree  # the rerooted tree the pool shares
    baseline: Optional[bytes]
    cost_bytes: int
    stub_cost_bytes: int
    compile_seconds: float
    stages: List[Tuple[str, float]] = field(default_factory=list)
    rehydrated: bool = False


def _stage_guard(
    model_id: str,
    deadline_at: Optional[float],
    clock: Callable[[], float],
    started: float,
    verb: str,
) -> Tuple[Callable[[str], None], List[Tuple[str, float]]]:
    """A cooperative cancellation hook plus the stage-timing record.

    The returned ``on_stage(name)`` stamps the previous stage's duration
    and refuses with :class:`CompileDeadlineExceeded` once ``deadline_at``
    has passed — between stages only, so a stage that started in budget
    always runs to completion (no torn pipeline state to unwind).
    """
    marks: List[Tuple[str, float]] = []
    last = [("start", started)]

    def on_stage(stage: str) -> None:
        now = clock()
        prev_name, prev_at = last[0]
        if prev_name != "start":
            marks.append((prev_name, now - prev_at))
        last[0] = (stage, now)
        if deadline_at is not None and now >= deadline_at:
            raise CompileDeadlineExceeded(
                f"{verb} of model {model_id!r} overran its deadline at "
                f"stage {stage!r} (+{now - started:.3f}s elapsed)"
            )

    def finish() -> None:
        now = clock()
        prev_name, prev_at = last[0]
        if prev_name != "start":
            marks.append((prev_name, now - prev_at))

    on_stage.finish = finish  # type: ignore[attr-defined]
    return on_stage, marks


def model_cost_bytes(pool: EngineSessionPool) -> int:
    """Resident cost of one compiled model (the budget charge)."""
    return pool.resident_bytes()


def stub_cost_bytes(jt: JunctionTree, baseline: Optional[bytes]) -> int:
    """Retained cost of an evicted model's rehydration stub."""
    total = sum(t.nbytes for t in jt.potentials.values())
    if baseline is not None:
        total += len(baseline)
    return total


def compile_model(
    model_id: str,
    network: BayesianNetwork,
    sessions: int = 2,
    cache_size: int = 512,
    deadline_at: Optional[float] = None,
    heuristic: str = "min-fill",
    clock: Callable[[], float] = time.monotonic,
) -> CompiledModel:
    """Cold compile: network → junction tree → rerooted warm pool.

    Runs the full pipeline with cooperative deadline checks between
    stages (``moralize``, ``triangulate``, ``spanning-tree``,
    ``absorb-cpts``, ``reroot``, one ``calibrate-session-i`` per pool
    slot, ``checkpoint``).  Raises
    :class:`~repro.serve.request.CompileDeadlineExceeded` when
    ``deadline_at`` passes between stages; partial work is discarded and
    the model stays cold.
    """
    if sessions < 1:
        raise ValueError("sessions must be >= 1")
    started = clock()
    on_stage, marks = _stage_guard(
        model_id, deadline_at, clock, started, "compile"
    )
    jt = junction_tree_from_network(network, heuristic, on_stage=on_stage)
    on_stage("reroot")
    pool = EngineSessionPool.from_junction_tree(
        jt, sessions=sessions, cache_size=cache_size, warm=False
    )
    for i, engine in enumerate(pool.engines):
        on_stage(f"calibrate-session-{i}")
        engine.propagate()
    on_stage("checkpoint")
    pool.capture_checkpoint()
    on_stage.finish()  # type: ignore[attr-defined]
    rerooted = pool.engines[0].jt
    baseline = pool.baseline_checkpoint
    return CompiledModel(
        model_id=model_id,
        pool=pool,
        junction_tree=rerooted,
        baseline=baseline,
        cost_bytes=model_cost_bytes(pool),
        stub_cost_bytes=stub_cost_bytes(rerooted, baseline),
        compile_seconds=clock() - started,
        stages=marks,
        rehydrated=False,
    )


def rehydrate_model(
    model_id: str,
    junction_tree: JunctionTree,
    baseline: bytes,
    sessions: int = 2,
    cache_size: int = 512,
    deadline_at: Optional[float] = None,
    clock: Callable[[], float] = time.monotonic,
) -> CompiledModel:
    """Warm restart an evicted model from its retained stub.

    ``junction_tree`` must be the *rerooted* tree the baseline checkpoint
    was captured over (the registry retains exactly that on eviction).
    Each new session restores the checkpoint directly — no moralization,
    no triangulation, no rerooting, no calibration propagation — which is
    why rehydration beats a cold compile (gated in
    ``benchmarks/bench_registry.py``).
    """
    if sessions < 1:
        raise ValueError("sessions must be >= 1")
    if baseline is None:
        raise ValueError("rehydrate needs the retained baseline checkpoint")
    started = clock()
    on_stage, marks = _stage_guard(
        model_id, deadline_at, clock, started, "rehydrate"
    )
    on_stage("build-sessions")
    engines = [
        InferenceEngine(junction_tree, reroot=False, cache_size=cache_size)
        for _ in range(sessions)
    ]
    shared = QueryCache(cache_size)
    for engine in engines:
        engine.cache = shared
    for i, engine in enumerate(engines):
        on_stage(f"restore-session-{i}")
        engine.restore(io.BytesIO(baseline))
    pool = EngineSessionPool(engines)
    pool.adopt_checkpoint(baseline)
    on_stage.finish()  # type: ignore[attr-defined]
    return CompiledModel(
        model_id=model_id,
        pool=pool,
        junction_tree=junction_tree,
        baseline=baseline,
        cost_bytes=model_cost_bytes(pool),
        stub_cost_bytes=stub_cost_bytes(junction_tree, baseline),
        compile_seconds=clock() - started,
        stages=marks,
        rehydrated=True,
    )
