"""The sharded multi-tenant model registry.

Two classes turn the single-model service into a multi-model platform:

* :class:`ModelRegistry` — owns the model lifecycle.  Models are
  *registered* cheaply (a network or a loader callable) and *compiled*
  on first use: the full bn → moralize → triangulate → reroot →
  calibrate pipeline, warm :class:`~repro.serve.EngineSessionPool`, and
  a per-model :class:`~repro.serve.InferenceService` in front of it.
  Residency is governed by a **global memory budget** (per-model cost
  from :attr:`PotentialTable.nbytes` totals across the pool, via
  :meth:`EngineSessionPool.resident_bytes`): compiling a model past the
  budget evicts least-recently-used cold models, draining their services
  (in-flight work finishes; nothing is lost) and closing their pools,
  while retaining a cheap *stub* — the rerooted tree plus the baseline
  integrity checkpoint — so the next miss **rehydrates** (restore per
  session) instead of recompiling.  Compilation is **single-flight** (N
  concurrent misses trigger one compile; followers wait) and
  **deadline-aware** (a compile that can't finish inside the requesting
  deadline refuses with the typed
  :class:`~repro.serve.request.CompileDeadlineExceeded` instead of
  blocking the queue).
* :class:`RegistryService` — the multi-tenant front door.  Routes
  :class:`~repro.serve.QueryRequest`s by ``model_id`` to the per-model
  service, after per-tenant weighted fair admission
  (:class:`~repro.registry.fairness.TenantScheduler`): tenants over
  their quota are refused with the typed
  :class:`~repro.serve.request.TenantQuotaExceeded`, and admitted
  requests carry an effective priority that sorts a saturating tenant's
  overflow behind lighter tenants in the existing per-model priority
  queue.  ``drain()`` closes the registry and returns one aggregated
  :class:`~repro.serve.ServiceReport` with per-model and per-tenant
  breakdowns plus the registry's cache economics (hits, misses,
  compiles, rehydrations, evictions, typed refusal counts, peak
  resident bytes).
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace
from typing import Callable, Dict, List, Optional

from repro.bn.network import BayesianNetwork
from repro.durability.recovery import ModelRecovery
from repro.durability.store import DurableModelStore
from repro.obs.metrics import latency_percentiles
from repro.obs.span import CAT_RECOVERY, CAT_SERVE
from repro.obs.tracer import Tracer
from repro.registry.compiler import (
    CompiledModel,
    compile_model,
    rehydrate_model,
    stub_cost_bytes,
)
from repro.registry.fairness import TenantScheduler
from repro.serve.report import ServiceReport
from repro.serve.request import (
    STATUS_DEADLINE,
    STATUS_FAILED,
    STATUS_SHED,
    CompileDeadlineExceeded,
    ModelNotFound,
    QueryRequest,
    QueryResponse,
    ServiceClosed,
)
from repro.serve.service import InferenceService, _Future

# Entry lifecycle: cold --compile--> resident --evict--> stub
#                  stub --rehydrate--> resident; stub --pressure--> cold
_COLD = "cold"
_COMPILING = "compiling"
_RESIDENT = "resident"
_STUB = "stub"

# ServiceReport counters summed when aggregating per-model services.
_SUMMED_FIELDS = (
    "submitted",
    "served_ok",
    "served_stale",
    "coalesced",
    "shed",
    "deadline_missed",
    "failed",
    "breaker_short_circuits",
    "batches",
    "batched_flights",
    "single_flights",
    "quarantined",
    "session_recycles",
    "session_recycles_from_checkpoint",
    "watchdog_interventions",
)


class _Entry:
    """One registered model's lifecycle record (guarded by the registry
    lock; the condition wakes single-flight followers on state changes)."""

    def __init__(self, model_id: str, loader, cond: threading.Condition):
        self.model_id = model_id
        self.loader = loader
        self.state = _COLD
        self.cond = cond
        self.pool = None
        self.service: Optional[InferenceService] = None
        self.junction_tree = None
        self.baseline: Optional[bytes] = None
        self.cost_bytes = 0
        self.stub_cost_bytes = 0
        # Last observed cold-compile / rehydrate wall times: the upfront
        # deadline estimates (None until first measured).
        self.compile_estimate: Optional[float] = None
        self.rehydrate_estimate: Optional[float] = None
        self.last_used = 0
        self.hits = 0
        self.misses = 0
        self.compiles = 0
        self.rehydrations = 0
        self.evictions = 0

    def resident_cost(self) -> int:
        if self.state == _RESIDENT:
            return self.cost_bytes
        if self.state == _STUB:
            return self.stub_cost_bytes
        return 0


class ModelRegistry:
    """On-demand compiled models under one global memory budget.

    Parameters
    ----------
    memory_budget:
        Global budget in bytes over every resident pool and retained
        stub; ``None`` disables eviction.  A single model larger than
        the whole budget still serves (the registry will not refuse the
        only copy of the work), but it is flagged in ``stats()`` as a
        budget overrun.
    sessions, cache_size:
        Per-model pool shape (see :class:`EngineSessionPool`).
    max_queue, workers, max_batch, watchdog_grace:
        Per-model :class:`InferenceService` admission/batching knobs.
    primary_factory, fallback_factory:
        Zero-arg callables building the executor tiers for each
        per-model service (called once per compile/rehydrate, so evicted
        models' executors are truly released).  ``None`` keeps the
        service defaults.
    durable_root:
        Directory compiled-model artifacts (rerooted tree + baseline
        checkpoint) persist under.  A fresh process registering a model
        whose artifacts survive there adopts them as a **stub** — the
        first acquire rehydrates warm instead of paying moralize /
        triangulate / calibrate cold.  Invalid artifacts (signature
        mismatch, torn files) are ignored and the model compiles cold.
    """

    def __init__(
        self,
        memory_budget: Optional[int] = None,
        sessions: int = 2,
        cache_size: int = 512,
        max_queue: int = 32,
        workers: Optional[int] = None,
        max_batch: int = 1,
        watchdog_grace: Optional[float] = None,
        primary_factory: Optional[Callable[[], object]] = None,
        fallback_factory: Optional[Callable[[], object]] = None,
        heuristic: str = "min-fill",
        clock: Callable[[], float] = time.monotonic,
        durable_root: Optional[str] = None,
    ):
        if memory_budget is not None and memory_budget < 1:
            raise ValueError("memory_budget must be >= 1 byte (or None)")
        self.memory_budget = memory_budget
        self.sessions = sessions
        self.cache_size = cache_size
        self.max_queue = max_queue
        self.workers = workers
        self.max_batch = max_batch
        self.watchdog_grace = watchdog_grace
        self.primary_factory = primary_factory
        self.fallback_factory = fallback_factory
        self.heuristic = heuristic
        self._clock = clock
        self.durable_root = durable_root
        self._durable = (
            DurableModelStore(durable_root) if durable_root is not None else None
        )

        self._lock = threading.Lock()
        self._entries: Dict[str, _Entry] = {}
        self._tick = 0
        self._closed = False

        # Registry-level accounting.
        self.hits = 0
        self.misses = 0
        self.compiles = 0
        self.rehydrations = 0
        self.evictions = 0
        self.compile_deadline_refusals = 0
        self.budget_overruns = 0
        self.peak_resident_bytes = 0
        self.recovered_models = 0
        self.model_recoveries: List[ModelRecovery] = []

        # Aggregated totals absorbed from drained per-model services.
        self._totals: Dict[str, int] = {f: 0 for f in _SUMMED_FIELDS}
        self._tier_counts: Dict[str, int] = {}
        self._per_tenant: Dict[str, Dict[str, int]] = {}
        self._per_model: Dict[str, Dict[str, int]] = {}
        self._served_durations: List[float] = []
        self._queue_high_water = 0

        self._tracer = Tracer()
        self._buf = self._tracer.buffer(0)
        self._tracer.name_row(0, "registry")
        self._started_ns = time.perf_counter_ns()
        self._report: Optional[ServiceReport] = None

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #

    def register(
        self,
        model_id: str,
        network: Optional[BayesianNetwork] = None,
        loader: Optional[Callable[[], BayesianNetwork]] = None,
    ) -> None:
        """Make ``model_id`` routable; compilation happens on first use.

        Exactly one of ``network`` (held by reference) or ``loader`` (a
        zero-arg callable invoked at compile time — the cheap way to
        register thousands of models) must be given.

        With a ``durable_root``, registration also checks the durable
        model store: validated artifacts from a previous process are
        adopted as a stub, so the first :meth:`acquire` rehydrates warm.
        """
        if (network is None) == (loader is None):
            raise ValueError("register needs exactly one of network/loader")
        if loader is None:
            loader = lambda: network  # noqa: E731
        with self._lock:
            if self._closed:
                raise ServiceClosed("registry is closed")
            if model_id in self._entries:
                raise ValueError(f"model {model_id!r} already registered")
            entry = _Entry(model_id, loader, threading.Condition(self._lock))
            self._entries[model_id] = entry
        if self._durable is not None:
            self._adopt_durable(entry)

    def _adopt_durable(self, entry: _Entry) -> None:
        """Promote a cold entry to a stub from durable artifacts.

        Artifact loading and validation (tree parse, checkpoint
        signature check) run outside the lock; any validation failure
        leaves the entry cold — a bad artifact is never worth a wrong
        answer.
        """
        t0_ns = time.perf_counter_ns()
        recovery = ModelRecovery(model_id=entry.model_id, adopted=False)
        try:
            loaded = self._durable.load(entry.model_id)
        except Exception as exc:
            loaded = None
            recovery.detail = f"{type(exc).__name__}: {exc}"
        if loaded is None:
            if not recovery.detail:
                recovery.detail = "no durable artifacts"
            with self._lock:
                self.model_recoveries.append(recovery)
            return
        junction_tree, baseline, meta = loaded
        recovery.adopted = True
        recovery.checkpoint_bytes = len(baseline)
        recovery.detail = "adopted as stub"
        with self._lock:
            if entry.state != _COLD:
                return
            entry.junction_tree = junction_tree
            entry.baseline = baseline
            entry.stub_cost_bytes = stub_cost_bytes(junction_tree, baseline)
            seconds = meta.get("compile_seconds")
            if seconds:
                entry.compile_estimate = float(seconds)
            entry.state = _STUB
            self.recovered_models += 1
            self.model_recoveries.append(recovery)
            self._make_room(protect=entry.model_id)
            self._buf.span(
                f"adopt:{entry.model_id}",
                CAT_RECOVERY,
                t0_ns,
                time.perf_counter_ns(),
            )

    def models(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def __contains__(self, model_id: str) -> bool:
        with self._lock:
            return model_id in self._entries

    # ------------------------------------------------------------------ #
    # Budget accounting
    # ------------------------------------------------------------------ #

    def _resident_bytes_locked(self) -> int:
        return sum(e.resident_cost() for e in self._entries.values())

    def resident_bytes(self) -> int:
        """Current bytes charged against the budget (pools + stubs)."""
        with self._lock:
            return self._resident_bytes_locked()

    def resident_models(self) -> List[str]:
        with self._lock:
            return sorted(
                m for m, e in self._entries.items() if e.state == _RESIDENT
            )

    def stats(self) -> Dict[str, object]:
        """Registry-level counters plus the per-model breakdown."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "compiles": self.compiles,
                "rehydrations": self.rehydrations,
                "evictions": self.evictions,
                "compile_deadline_refusals": self.compile_deadline_refusals,
                "budget_overruns": self.budget_overruns,
                "resident_bytes": self._resident_bytes_locked(),
                "peak_resident_bytes": self.peak_resident_bytes,
                "memory_budget": self.memory_budget,
                "recovered_models": self.recovered_models,
                "durable_root": self.durable_root,
                "models": {
                    m: {
                        "state": e.state,
                        "hits": e.hits,
                        "misses": e.misses,
                        "compiles": e.compiles,
                        "rehydrations": e.rehydrations,
                        "evictions": e.evictions,
                        "cost_bytes": e.resident_cost(),
                        "compile_seconds": e.compile_estimate,
                        "rehydrate_seconds": e.rehydrate_estimate,
                    }
                    for m, e in self._entries.items()
                },
            }

    # ------------------------------------------------------------------ #
    # Acquire (compile-on-miss, single-flight, deadline-aware)
    # ------------------------------------------------------------------ #

    def acquire(
        self, model_id: str, deadline_at: Optional[float] = None
    ) -> _Entry:
        """Return the resident entry for ``model_id``, compiling on miss.

        Single-flight: concurrent misses on the same model wait for the
        one in-progress compile.  ``deadline_at`` (absolute
        ``time.monotonic`` instant) makes the wait and the compile
        cooperative: a caller whose deadline passes while waiting, or
        whose budget cannot cover the estimated compile, refuses with
        :class:`CompileDeadlineExceeded` — it never blocks the queue
        behind a compile it cannot outlive.  Raises
        :class:`ModelNotFound` for unregistered ids and
        :class:`ServiceClosed` after :meth:`close`.
        """
        clock = self._clock
        with self._lock:
            entry = self._entries.get(model_id)
            if entry is None:
                raise ModelNotFound(f"model {model_id!r} is not registered")
            while True:
                if self._closed:
                    raise ServiceClosed("registry is closed")
                if entry.state == _RESIDENT:
                    self._tick += 1
                    entry.last_used = self._tick
                    entry.hits += 1
                    self.hits += 1
                    return entry
                if entry.state == _COMPILING:
                    if deadline_at is not None:
                        remaining = deadline_at - clock()
                        if remaining <= 0:
                            self.compile_deadline_refusals += 1
                            raise CompileDeadlineExceeded(
                                f"model {model_id!r} still compiling at "
                                f"the request deadline"
                            )
                        entry.cond.wait(timeout=min(remaining, 0.05))
                    else:
                        entry.cond.wait(timeout=0.05)
                    continue
                # Cold or stub: this caller becomes the compile leader.
                rehydrating = entry.state == _STUB
                estimate = (
                    entry.rehydrate_estimate
                    if rehydrating
                    else entry.compile_estimate
                )
                if (
                    deadline_at is not None
                    and estimate is not None
                    and clock() + estimate > deadline_at
                ):
                    self.compile_deadline_refusals += 1
                    verb = "rehydrate" if rehydrating else "compile"
                    raise CompileDeadlineExceeded(
                        f"model {model_id!r} needs ~{estimate:.3f}s to "
                        f"{verb}, which overruns the request deadline"
                    )
                prev_state = entry.state
                entry.state = _COMPILING
                break

        t0_ns = time.perf_counter_ns()
        try:
            compiled = self._build(entry, rehydrating, deadline_at)
        except BaseException as exc:
            with self._lock:
                entry.state = prev_state
                entry.cond.notify_all()
                if isinstance(exc, CompileDeadlineExceeded):
                    self.compile_deadline_refusals += 1
            raise

        with self._lock:
            self._install(entry, compiled, rehydrating)
            self._buf.span(
                f"{'rehydrate' if rehydrating else 'compile'}:{model_id}",
                CAT_SERVE,
                t0_ns,
                time.perf_counter_ns(),
            )
            entry.cond.notify_all()
        if (
            self._durable is not None
            and not rehydrating
            and compiled.baseline is not None
        ):
            # Persist the fresh compile's artifacts (outside the lock —
            # fsync'd writes are slow) so the NEXT process starts warm.
            self._durable.save(
                model_id,
                compiled.junction_tree,
                compiled.baseline,
                compile_seconds=compiled.compile_seconds,
            )
        return entry

    def _build(
        self, entry: _Entry, rehydrating: bool, deadline_at: Optional[float]
    ) -> CompiledModel:
        """Run the compile or rehydrate pipeline (no registry lock held)."""
        if rehydrating:
            return rehydrate_model(
                entry.model_id,
                entry.junction_tree,
                entry.baseline,
                sessions=self.sessions,
                cache_size=self.cache_size,
                deadline_at=deadline_at,
                clock=self._clock,
            )
        network = entry.loader()
        if not isinstance(network, BayesianNetwork):
            raise TypeError(
                f"loader for model {entry.model_id!r} returned "
                f"{type(network).__name__}, expected BayesianNetwork"
            )
        return compile_model(
            entry.model_id,
            network,
            sessions=self.sessions,
            cache_size=self.cache_size,
            deadline_at=deadline_at,
            heuristic=self.heuristic,
            clock=self._clock,
        )

    def _make_service(self, pool) -> InferenceService:
        kwargs: Dict[str, object] = {
            "max_queue": self.max_queue,
            "max_batch": self.max_batch,
            "watchdog_grace": self.watchdog_grace,
        }
        if self.workers is not None:
            kwargs["workers"] = self.workers
        if self.primary_factory is not None:
            kwargs["primary"] = self.primary_factory()
        if self.fallback_factory is not None:
            kwargs["fallback"] = self.fallback_factory()
        return InferenceService(pool, **kwargs)

    def _install(
        self, entry: _Entry, compiled: CompiledModel, rehydrated: bool
    ) -> None:
        entry.pool = compiled.pool
        entry.junction_tree = compiled.junction_tree
        entry.baseline = compiled.baseline
        entry.cost_bytes = compiled.cost_bytes
        entry.stub_cost_bytes = compiled.stub_cost_bytes
        entry.service = self._make_service(compiled.pool)
        entry.state = _RESIDENT
        entry.misses += 1
        self.misses += 1
        if rehydrated:
            entry.rehydrations += 1
            self.rehydrations += 1
            entry.rehydrate_estimate = compiled.compile_seconds
        else:
            entry.compiles += 1
            self.compiles += 1
            entry.compile_estimate = compiled.compile_seconds
        self._tick += 1
        entry.last_used = self._tick
        self._make_room(protect=entry.model_id)
        resident = self._resident_bytes_locked()
        self.peak_resident_bytes = max(self.peak_resident_bytes, resident)

    # ------------------------------------------------------------------ #
    # Eviction
    # ------------------------------------------------------------------ #

    def _make_room(self, protect: Optional[str] = None) -> None:
        """Evict LRU models until the budget holds (lock held).

        Resident pools are demoted to stubs first (tree + checkpoint
        retained, rehydration stays cheap); if stubs alone still bust
        the budget, the coldest stubs are dropped entirely (back to
        ``cold`` — next miss pays a full recompile).  The protected
        (just-installed) model is never evicted: a model larger than the
        whole budget still serves, recorded as a budget overrun.
        """
        if self.memory_budget is None:
            return
        while self._resident_bytes_locked() > self.memory_budget:
            victim = self._lru_locked(_RESIDENT, protect)
            if victim is not None:
                self._evict_locked(victim)
                continue
            stub = self._lru_locked(_STUB, protect)
            if stub is not None:
                stub.junction_tree = None
                stub.baseline = None
                stub.stub_cost_bytes = 0
                stub.rehydrate_estimate = None
                stub.state = _COLD
                continue
            self.budget_overruns += 1
            break

    def _lru_locked(
        self, state: str, protect: Optional[str]
    ) -> Optional[_Entry]:
        candidates = [
            e
            for e in self._entries.values()
            if e.state == state and e.model_id != protect
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda e: e.last_used)

    def _evict_locked(self, entry: _Entry) -> None:
        """Demote one resident model to a stub (lock held).

        The per-model service drains first — queued and in-flight
        requests finish and are answered (or explicitly refused by their
        own deadlines); nothing is silently dropped — then the pool
        closes.  A request racing this eviction sees ``ServiceClosed``
        from ``submit`` and is retried by the front door against the
        rehydrated model.
        """
        t0_ns = time.perf_counter_ns()
        report = entry.service.drain()
        self._absorb_report(report)
        entry.pool.close()
        entry.service = None
        entry.pool = None
        entry.state = _STUB
        entry.evictions += 1
        self.evictions += 1
        self._buf.span(
            f"evict:{entry.model_id}",
            CAT_SERVE,
            t0_ns,
            time.perf_counter_ns(),
        )

    def evict(self, model_id: str) -> bool:
        """Explicitly demote one resident model to its stub.

        Returns True when an eviction happened (False if the model was
        not resident).  Used by operators and tests; budget-driven
        evictions happen automatically during compile installs.
        """
        with self._lock:
            entry = self._entries.get(model_id)
            if entry is None:
                raise ModelNotFound(f"model {model_id!r} is not registered")
            if entry.state != _RESIDENT:
                return False
            self._evict_locked(entry)
            return True

    # ------------------------------------------------------------------ #
    # Report aggregation / lifecycle
    # ------------------------------------------------------------------ #

    def _absorb_report(self, report: ServiceReport) -> None:
        for field_name in _SUMMED_FIELDS:
            self._totals[field_name] += getattr(report, field_name)
        for tier, count in report.tier_counts.items():
            self._tier_counts[tier] = self._tier_counts.get(tier, 0) + count
        for tenant, counts in report.per_tenant.items():
            bucket = self._per_tenant.setdefault(tenant, {})
            for status, count in counts.items():
                bucket[status] = bucket.get(status, 0) + count
        for model, counts in report.per_model.items():
            bucket = self._per_model.setdefault(model, {})
            for status, count in counts.items():
                bucket[status] = bucket.get(status, 0) + count
        self._queue_high_water = max(
            self._queue_high_water, report.queue_high_water
        )
        trace = report.trace
        if trace is not None:
            self._served_durations.extend(
                span.duration
                for span in trace.spans
                if span.cat == CAT_SERVE
                and span.name.startswith(("request:ok", "request:stale"))
            )

    def close(self) -> ServiceReport:
        """Drain every resident model and return the aggregated report.

        Idempotent.  The report sums every per-model service this
        registry ever drained (evictions included) and carries the
        registry's own counters; latency percentiles are recomputed over
        the union of all served spans.
        """
        with self._lock:
            if self._report is not None:
                return self._report
            self._closed = True
            for entry in self._entries.values():
                if entry.state == _RESIDENT:
                    self._evict_locked(entry)
                    entry.evictions -= 1  # a close is not an eviction
                    self.evictions -= 1
                entry.cond.notify_all()
            self._report = self._build_report_locked()
            return self._report

    def _build_report_locked(self) -> ServiceReport:
        trace = self._tracer.finalize(executor="ModelRegistry")
        report = ServiceReport(
            tier_counts=dict(self._tier_counts),
            per_tenant={t: dict(c) for t, c in self._per_tenant.items()},
            per_model={m: dict(c) for m, c in self._per_model.items()},
            model_hits=self.hits,
            model_misses=self.misses,
            compiles=self.compiles,
            rehydrations=self.rehydrations,
            evictions=self.evictions,
            compile_deadline_refusals=self.compile_deadline_refusals,
            peak_resident_bytes=self.peak_resident_bytes,
            memory_budget=self.memory_budget,
            recoveries=self.recovered_models,
            latency=latency_percentiles(
                self._served_durations, points=(50, 90, 99)
            ),
            wall_seconds=(time.perf_counter_ns() - self._started_ns) * 1e-9,
            queue_high_water=self._queue_high_water,
            trace=trace,
        )
        for field_name in _SUMMED_FIELDS:
            setattr(report, field_name, self._totals[field_name])
        return report


class RegistryService:
    """Multi-tenant front door over a :class:`ModelRegistry`.

    ``submit`` never blocks on compiles it can refuse and never raises
    for per-request conditions — every admission outcome is a resolved
    future carrying a typed response (quota refusals, compile-deadline
    refusals, unknown models), exactly like the single-model service's
    exact-or-explicit contract.  Only :class:`ServiceClosed` (the whole
    front door draining) raises.

    Parameters
    ----------
    registry:
        The model registry; the service drives its compile/evict
        lifecycle and closes it on :meth:`drain`.
    scheduler:
        The per-tenant fair-admission scheduler; defaults to a
        :class:`TenantScheduler` sized to ``capacity``.
    capacity:
        Fair-share capacity when building the default scheduler.
    default_model:
        Model used by requests with ``model_id=None``; when unset, a
        registry holding exactly one model routes there implicitly.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        scheduler: Optional[TenantScheduler] = None,
        capacity: int = 64,
        default_model: Optional[str] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.registry = registry
        self.scheduler = scheduler or TenantScheduler(capacity=capacity)
        self.default_model = default_model
        self._clock = clock
        self._closed = False
        self._lifecycle_lock = threading.Lock()
        self._report: Optional[ServiceReport] = None
        self._stats_lock = threading.Lock()
        self.shed_by_quota = 0
        self.compile_deadline_refusals = 0
        # Front-door refusals never reach a per-model service, so their
        # accounting (submitted/shed/deadline/failed + per-tenant and
        # per-model breakdowns) is kept here and merged into the report.
        self._front_counts = {
            "submitted": 0,
            "shed": 0,
            "deadline_missed": 0,
            "failed": 0,
        }
        self._front_tenant: Dict[str, Dict[str, int]] = {}
        self._front_model: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------------ #
    # Admission + routing
    # ------------------------------------------------------------------ #

    def _refuse(
        self,
        request: QueryRequest,
        model_id: Optional[str],
        status: str,
        kind: Optional[str],
        error: str,
    ) -> _Future:
        future = _Future()
        counter = {
            STATUS_SHED: "shed",
            STATUS_DEADLINE: "deadline_missed",
            STATUS_FAILED: "failed",
        }[status]
        with self._stats_lock:
            self._front_counts["submitted"] += 1
            self._front_counts[counter] += 1
            if kind == "quota":
                self.shed_by_quota += 1
            if kind == "compile-deadline":
                self.compile_deadline_refusals += 1
            bucket = self._front_tenant.setdefault(request.tenant or "", {})
            bucket[status] = bucket.get(status, 0) + 1
            if model_id:
                bucket = self._front_model.setdefault(model_id, {})
                bucket[status] = bucket.get(status, 0) + 1
        future.resolve(
            QueryResponse(
                status=status,
                error=error,
                kind=kind,
                model_id=model_id,
                tenant=request.tenant,
            )
        )
        return future

    def submit(self, request: QueryRequest) -> _Future:
        """Admit one request: fairness, then routing, then forwarding.

        The returned future resolves to the per-model service's response
        (with ``model_id``/``tenant`` stamped) or to a typed refusal.
        """
        if self._closed:
            raise ServiceClosed("registry service is draining")
        model_id = request.model_id or self.default_model
        if model_id is None:
            models = self.registry.models()
            if len(models) == 1:
                model_id = models[0]
        if model_id is None or model_id not in self.registry:
            return self._refuse(
                request,
                model_id,
                STATUS_FAILED,
                "model-not-found",
                f"model {model_id!r} is not registered",
            )

        tenant = request.tenant or ""
        admitted, effective_priority, share = self.scheduler.admit(
            tenant, request.priority
        )
        if not admitted:
            return self._refuse(
                request,
                model_id,
                STATUS_SHED,
                "quota",
                f"tenant {tenant or '(anon)'} is over its fair-share "
                f"admission quota ({share:.1f} slots)",
            )

        deadline_at = (
            self._clock() + request.deadline
            if request.deadline is not None
            else None
        )
        try:
            for _attempt in range(3):
                try:
                    entry = self.registry.acquire(
                        model_id, deadline_at=deadline_at
                    )
                except CompileDeadlineExceeded as exc:
                    self.scheduler.release(tenant)
                    return self._refuse(
                        request,
                        model_id,
                        STATUS_DEADLINE,
                        "compile-deadline",
                        str(exc),
                    )
                remaining = None
                if deadline_at is not None:
                    remaining = deadline_at - self._clock()
                    if remaining <= 0:
                        self.scheduler.release(tenant)
                        return self._refuse(
                            request,
                            model_id,
                            STATUS_DEADLINE,
                            None,
                            "deadline passed while acquiring the model",
                        )
                forwarded = replace(
                    request,
                    model_id=model_id,
                    tenant=tenant,
                    priority=effective_priority,
                    deadline=remaining,
                )
                try:
                    future = entry.service.submit(forwarded)
                except ServiceClosed:
                    # The model was evicted between acquire and submit;
                    # re-acquire (rehydrate) and retry.
                    continue
                future.add_done_callback(
                    lambda _resp, t=tenant: self.scheduler.release(t)
                )
                return future
            self.scheduler.release(tenant)
            return self._refuse(
                request,
                model_id,
                STATUS_FAILED,
                None,
                "model was evicted repeatedly while routing; giving up",
            )
        except BaseException:
            self.scheduler.release(tenant)
            raise

    def query(
        self,
        delta=None,
        vars=None,
        model_id: Optional[str] = None,
        tenant: str = "",
        deadline: Optional[float] = None,
        priority: int = 0,
        max_staleness: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> QueryResponse:
        """Blocking convenience: submit and wait for the response."""
        future = self.submit(
            QueryRequest(
                delta=delta or {},
                vars=vars,
                deadline=deadline,
                priority=priority,
                max_staleness=max_staleness,
                model_id=model_id,
                tenant=tenant,
            )
        )
        return future.result(timeout)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def drain(self) -> ServiceReport:
        """Stop admissions, close the registry, return the full report."""
        with self._lifecycle_lock:
            if self._report is not None:
                return self._report
            self._closed = True
            report = self.registry.close()
            with self._stats_lock:
                report.submitted += self._front_counts["submitted"]
                report.shed += self._front_counts["shed"]
                report.deadline_missed += self._front_counts[
                    "deadline_missed"
                ]
                report.failed += self._front_counts["failed"]
                report.shed_by_quota = self.shed_by_quota
                # compile-deadline refusals all originate in
                # registry.acquire and are already counted there; the
                # front-door counter mirrors them for live introspection.
                for tenant, counts in self._front_tenant.items():
                    bucket = report.per_tenant.setdefault(tenant, {})
                    for status, count in counts.items():
                        bucket[status] = bucket.get(status, 0) + count
                for model, counts in self._front_model.items():
                    bucket = report.per_model.setdefault(model, {})
                    for status, count in counts.items():
                        bucket[status] = bucket.get(status, 0) + count
            self._report = report
            return self._report

    def __enter__(self) -> "RegistryService":
        return self

    def __exit__(self, *exc) -> None:
        self.drain()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RegistryService(models={len(self.registry.models())}, "
            f"resident={len(self.registry.resident_models())}, "
            f"scheduler={self.scheduler!r})"
        )
