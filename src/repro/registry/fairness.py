"""Per-tenant weighted fair admission for the multi-model service.

The per-model :class:`~repro.serve.InferenceService` already has a
bounded *priority* queue; what it cannot see is *who* is submitting.  One
hot tenant burst-submitting at priority 0 fills every queue slot and
starves everyone else — explicitly the failure mode the ROADMAP's
"millions of users" north star forbids.

:class:`TenantScheduler` closes that hole at the registry's front door
with two mechanisms layered over the existing priority queue:

* **Quota** — each tenant may hold at most ``ceil(burst_factor x
  fair_share)`` requests in flight, where ``fair_share = capacity x
  weight / sum(active weights)``.  Requests beyond the quota are refused
  with the typed :class:`~repro.serve.request.TenantQuotaExceeded`
  (status ``shed``, kind ``"quota"``).  The fair share is computed over
  *active* tenants only, so the scheduler is work-conserving: a lone
  tenant may use the whole capacity, and its share shrinks only when
  others actually show up.  The quota never drops below 1, so a tenant
  that submits serially (one request at a time) is **never** refused for
  quota — the no-starvation guarantee the Hypothesis property test pins.
* **Priority penalty** — admitted requests are forwarded with an
  *effective* priority of ``base x levels + penalty`` where the penalty
  grows stepwise as the tenant's in-flight count climbs past multiples
  of its fair share (capped at ``levels - 1``).  Base-priority bands are
  preserved exactly (the multiplication), but *within* a band a
  saturating tenant's overflow sorts behind lighter tenants' requests in
  the per-model priority queue — weighted fair scheduling without a
  separate dispatcher thread.

Accounting (admit/refuse/release/peak per tenant) feeds the
``per_tenant`` breakdown of the drained report.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass
class TenantState:
    """Live accounting for one tenant."""

    weight: float = 1.0
    inflight: int = 0
    admitted: int = 0
    refused: int = 0
    peak_inflight: int = 0


class TenantScheduler:
    """Weighted fair admission: quotas plus priority penalties.

    Parameters
    ----------
    capacity:
        Total in-flight requests the service is sized for (roughly the
        sum of the per-model admission queues).  Fair shares are slices
        of this.
    default_weight:
        Weight assigned to tenants never seen by :meth:`set_weight`.
    burst_factor:
        Quota headroom over the fair share (>= 1.0).  2.0 means a tenant
        may burst to twice its instantaneous fair share before being
        refused.
    priority_levels:
        Penalty steps available within one base-priority band; effective
        priority is ``base * priority_levels + penalty``.
    """

    def __init__(
        self,
        capacity: int = 64,
        default_weight: float = 1.0,
        burst_factor: float = 2.0,
        priority_levels: int = 4,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if default_weight <= 0:
            raise ValueError("default_weight must be > 0")
        if burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1.0")
        if priority_levels < 2:
            raise ValueError("priority_levels must be >= 2")
        self.capacity = capacity
        self.default_weight = default_weight
        self.burst_factor = burst_factor
        self.priority_levels = priority_levels
        self._lock = threading.Lock()
        self._tenants: Dict[str, TenantState] = {}

    # ------------------------------------------------------------------ #
    # Configuration / introspection
    # ------------------------------------------------------------------ #

    def set_weight(self, tenant: str, weight: float) -> None:
        """Assign a tenant's fair-share weight (must be > 0)."""
        if weight <= 0:
            raise ValueError("tenant weight must be > 0")
        with self._lock:
            self._state(tenant).weight = weight

    def _state(self, tenant: str) -> TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = self._tenants[tenant] = TenantState(
                weight=self.default_weight
            )
        return state

    def _fair_share_locked(self, tenant: str) -> float:
        """Capacity slice for ``tenant`` over currently *active* weights."""
        state = self._state(tenant)
        active = sum(
            s.weight
            for name, s in self._tenants.items()
            if s.inflight > 0 or name == tenant
        )
        return self.capacity * state.weight / max(active, state.weight)

    def fair_share(self, tenant: str) -> float:
        with self._lock:
            return self._fair_share_locked(tenant)

    def quota(self, tenant: str) -> int:
        """Current hard admission cap for ``tenant`` (never below 1)."""
        with self._lock:
            share = self._fair_share_locked(tenant)
            return max(1, math.ceil(self.burst_factor * share))

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant accounting for reports and debugging."""
        with self._lock:
            return {
                tenant: {
                    "weight": s.weight,
                    "inflight": s.inflight,
                    "admitted": s.admitted,
                    "refused": s.refused,
                    "peak_inflight": s.peak_inflight,
                }
                for tenant, s in self._tenants.items()
            }

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #

    def admit(
        self, tenant: str, base_priority: int = 0
    ) -> Tuple[bool, int, float]:
        """Try to admit one request for ``tenant``.

        Returns ``(admitted, effective_priority, fair_share)``.  On
        refusal (tenant at quota) nothing is charged and
        ``effective_priority`` echoes the base.  On admission the
        tenant's in-flight count is charged; the caller **must** pair it
        with exactly one :meth:`release`, normally via the forwarded
        future's done callback.
        """
        with self._lock:
            state = self._state(tenant)
            share = self._fair_share_locked(tenant)
            quota = max(1, math.ceil(self.burst_factor * share))
            if state.inflight >= quota:
                state.refused += 1
                return False, base_priority, share
            # Penalty: how many fair shares deep this tenant already is.
            penalty = min(
                self.priority_levels - 1,
                int(state.inflight // max(share, 1e-9)),
            )
            state.inflight += 1
            state.admitted += 1
            state.peak_inflight = max(state.peak_inflight, state.inflight)
            effective = base_priority * self.priority_levels + penalty
            return True, effective, share

    def release(self, tenant: str) -> None:
        """Return one in-flight charge for ``tenant`` (idempotence is the
        caller's job — pair each admit with exactly one release)."""
        with self._lock:
            state = self._state(tenant)
            state.inflight = max(0, state.inflight - 1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            active = sum(1 for s in self._tenants.values() if s.inflight)
        return (
            f"TenantScheduler(capacity={self.capacity}, "
            f"tenants={len(self._tenants)}, active={active})"
        )
