"""High-level exact-inference API.

:class:`InferenceEngine` ties the library together: build (or accept) a
junction tree, reroot it to minimize the critical path, construct the task
dependency graph, and run evidence propagation under any executor.
"""

from repro.inference.cache import QueryCache
from repro.inference.evidence import Evidence, evidence_delta
from repro.inference.incremental import (
    IncrementalPlan,
    distribute_edges_for,
    plan_incremental,
)
from repro.inference.propagation import propagate_reference
from repro.inference.mpe import max_propagate, mpe_bruteforce
from repro.inference.engine import InferenceEngine
from repro.inference.shafershenoy import ShaferShenoyEngine
from repro.inference.variable_elimination import ve_marginal, ve_query
from repro.inference.map_query import marginal_map
from repro.inference.sensitivity import (
    evidence_impact,
    finding_strength,
    rank_findings,
)

__all__ = [
    "Evidence",
    "evidence_delta",
    "QueryCache",
    "IncrementalPlan",
    "plan_incremental",
    "distribute_edges_for",
    "propagate_reference",
    "max_propagate",
    "mpe_bruteforce",
    "InferenceEngine",
    "ShaferShenoyEngine",
    "ve_query",
    "ve_marginal",
    "marginal_map",
    "evidence_impact",
    "finding_strength",
    "rank_findings",
]
