"""Planning for incremental evidence repropagation.

A full propagation runs ``8 * (N - 1)`` primitive tasks regardless of how
much the findings changed since the last run.  For serving workloads that
move evidence by small deltas between queries most of that work is
redundant: a collect message ``mu[c -> p]`` depends only on the evidence
inside ``c``'s subtree, so it is still valid whenever no finding in that
subtree changed (Madsen & Jensen's lazy-propagation observation applied to
the paper's clique updating graph).

:func:`plan_incremental` turns an evidence delta into the *rebuild set*
(dirty cliques plus their root-ward closure) and the restricted collect
edge set, after checking that the reuse is actually sound:

* every rebuilt clique must find a stored collect message for each of its
  clean children in the previous state, and
* a *weakening* delta (retraction, overwrite, hard<->soft transition) may
  reopen probability mass in states that the previous evidence had zeroed.
  The carried separators then hold zeros where the new posterior is
  positive, and :func:`repro.potential.primitives.divide`'s ``0 -> 0``
  convention would silently drop that mass.  Zeros can only ever be
  *reopened* by a weakening delta (monotone deltas multiply further
  indicator factors in, which never turns a zero positive), so the planner
  scans the carried separators for zeros only in the weakening case and
  refuses the plan when it finds any.

A refusal (``None`` return) means "fall back to full propagation" — the
engine treats incremental execution strictly as an optimization, never a
semantics change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Set, Tuple

import numpy as np

from repro.jt.junction_tree import JunctionTree
from repro.tasks.clique_graph import dirty_ancestor_closure, dirty_cliques
from repro.tasks.state import PropagationState
from repro.tasks.task import COLLECT

from repro.inference.evidence import evidence_delta

Edge = Tuple[int, int]


@dataclass
class IncrementalPlan:
    """A validated restricted-repropagation plan.

    ``rebuild`` is the set of cliques whose working potentials must be
    reconstructed (changed-variable cliques plus ancestors);
    ``collect_edges`` the tree edges whose collect pipelines re-run (every
    edge whose child is in ``rebuild``).  The distribute edge set is chosen
    by the caller — full calibration distributes to every stale clique,
    a targeted query only along the root-to-host paths — via
    :func:`distribute_edges_for`.
    """

    changed_variables: Set[int] = field(default_factory=set)
    weakening: bool = False
    dirty: Set[int] = field(default_factory=set)
    rebuild: Set[int] = field(default_factory=set)
    collect_edges: Set[Edge] = field(default_factory=set)


def plan_incremental(
    jt: JunctionTree,
    prev: PropagationState,
    new_assignments: Mapping[int, int],
    new_soft: Mapping[int, "np.ndarray"],
) -> Optional[IncrementalPlan]:
    """Plan a restricted repropagation from ``prev`` to the new findings.

    Returns ``None`` when reuse is unsound and the caller must fall back
    to full propagation (see the module docstring for the two conditions).
    An empty delta yields a plan with empty ``rebuild`` — nothing to do.
    """
    changed, weakening = evidence_delta(
        new_assignments, new_soft, prev.evidence, prev.soft_evidence
    )
    if not changed:
        return IncrementalPlan()
    dirty = dirty_cliques(jt, changed)
    rebuild = dirty_ancestor_closure(jt, dirty)
    collect_edges = {
        (jt.parent[c], c) for c in rebuild if jt.parent[c] is not None
    }

    # Reuse soundness check 1: stored collect messages for clean children.
    for i in rebuild:
        for c in jt.children[i]:
            if c in rebuild:
                continue
            if (COLLECT, (i, c), "sep_new") not in prev._inter:
                return None

    # Reuse soundness check 2: weakening deltas must not reopen zeros in
    # any separator that survives into the new state as a divide
    # denominator (edges whose child is rebuilt get reset to ones).
    if weakening:
        for edge, table in prev.separators.items():
            if edge[1] in rebuild:
                continue
            if np.any(table.values == 0.0):
                return None

    return IncrementalPlan(
        changed_variables=changed,
        weakening=weakening,
        dirty=dirty,
        rebuild=rebuild,
        collect_edges=collect_edges,
    )


def distribute_edges_for(
    jt: JunctionTree,
    stale: Set[int],
    targets: Optional[Set[int]] = None,
) -> Set[Edge]:
    """Distribute-phase edges needed to refresh ``targets`` (or all cliques).

    An edge ``(p, c)`` re-runs exactly when ``c`` is stale and lies on a
    path from the root to a target clique; ``targets=None`` refreshes every
    stale clique (full calibration).  The returned set is closed toward
    the root, matching the dependency expectations of
    :func:`repro.tasks.dag.build_task_graph`.
    """
    edges: Set[Edge] = set()
    if targets is None:
        targets = stale
    for t in targets:
        for c in jt.path_to_root(t):
            p = jt.parent[c]
            if p is None:
                break
            if c not in stale:
                continue
            if (p, c) in edges:
                break
            edges.add((p, c))
    return edges


def incremental_state(
    prev: PropagationState,
    plan: IncrementalPlan,
    new_assignments: Mapping[int, int],
    new_soft: Mapping[int, "np.ndarray"],
) -> PropagationState:
    """Materialize the plan: a new state carrying ``prev``'s clean tables."""
    return PropagationState.incremental(
        prev,
        evidence=new_assignments,
        soft_evidence=new_soft,
        rebuild=sorted(plan.rebuild),
    )
