"""Evidence-keyed LRU cache for query results.

Serving workloads repeat queries: the same findings arrive again (dashboard
refreshes, retried requests) or a batch asks for many marginals under one
evidence set.  The :class:`QueryCache` memoizes per-variable marginals and
the evidence likelihood under a *canonical evidence signature*
(:meth:`repro.inference.evidence.Evidence.signature`), so a repeated query
costs a dictionary lookup instead of a propagation.

Because entries are addressed by the full evidence signature, no
invalidation protocol is needed: changing the findings changes the key,
and stale entries simply age out of the LRU.  Entries are exact posteriors
— the cache never approximates — so a hit is always safe to serve.

The cache is thread-safe: serving workloads (:mod:`repro.serve`) share
one cache across many sessions and client threads, and the LRU
reordering plus the hit/miss counters mutate shared structures on every
lookup, so every public method takes an internal lock.  Stored arrays
are immutable (write-protected copies), so a value handed out under the
lock stays safe to read after it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

LIKELIHOOD = "__likelihood__"


class QueryCache:
    """LRU cache of ``{evidence signature -> {variable: marginal}}``.

    ``capacity`` bounds the number of distinct evidence signatures (not
    individual marginals; all marginals under one signature share its
    entry).  ``hits`` / ``misses`` count lookups; :meth:`hit_rate`
    summarizes them for benchmarks and the CLI.
    """

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple, Dict]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------ #

    def _entry(self, signature: Tuple, create: bool) -> Optional[Dict]:
        # Caller must hold self._lock: LRU reordering and eviction both
        # mutate the OrderedDict.
        entry = self._entries.get(signature)
        if entry is not None:
            self._entries.move_to_end(signature)
            return entry
        if not create:
            return None
        entry = {}
        self._entries[signature] = entry
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return entry

    def get_marginal(
        self, signature: Tuple, variable: int
    ) -> Optional[np.ndarray]:
        with self._lock:
            entry = self._entry(signature, create=False)
            values = None if entry is None else entry.get(variable)
            if values is None:
                self.misses += 1
                return None
            self.hits += 1
            return values

    def put_marginal(
        self, signature: Tuple, variable: int, values: np.ndarray
    ) -> None:
        stored = np.array(values, dtype=np.float64, copy=True)
        stored.setflags(write=False)
        with self._lock:
            self._entry(signature, create=True)[variable] = stored

    def get_likelihood(self, signature: Tuple) -> Optional[float]:
        with self._lock:
            entry = self._entry(signature, create=False)
            value = None if entry is None else entry.get(LIKELIHOOD)
            if value is None:
                self.misses += 1
                return None
            self.hits += 1
            return value

    def put_likelihood(self, signature: Tuple, value: float) -> None:
        with self._lock:
            self._entry(signature, create=True)[LIKELIHOOD] = float(value)

    def __repr__(self) -> str:
        return (
            f"QueryCache(signatures={len(self._entries)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )
