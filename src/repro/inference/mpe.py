"""Most-probable-explanation (MPE) queries over junction trees.

Max-product propagation: an upward Shafer-Shenoy-style collect pass with
max-marginalized messages, followed by a Viterbi backtrack from the root
that fixes each clique's free variables to their argmax consistent with
the separator assignment chosen by its parent.

This extends the reproduced paper's sum-product evidence propagation with
the standard max-product variant, reusing the same junction-tree and
potential-table substrate.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.jt.junction_tree import JunctionTree
from repro.potential.primitives import extend, max_marginalize, multiply
from repro.potential.table import PotentialTable


def _argmax_given(
    table: PotentialTable, fixed: Mapping[int, int]
) -> Dict[int, int]:
    """Argmax assignment of ``table``'s free variables, given fixed ones.

    Ties break toward the lowest flat index, so results are deterministic.
    """
    indexer = []
    free_vars = []
    for var, card in zip(table.variables, table.cardinalities):
        if var in fixed:
            indexer.append(fixed[var])
        else:
            indexer.append(slice(None))
            free_vars.append((var, card))
    restricted = table.values[tuple(indexer)]
    if not free_vars:
        return {}
    flat = int(np.argmax(restricted.reshape(-1)))
    coords = np.unravel_index(flat, [card for _, card in free_vars])
    return {var: int(c) for (var, _), c in zip(free_vars, coords)}


def max_propagate(
    jt: JunctionTree,
    evidence: Optional[Mapping[int, int]] = None,
    soft_evidence: Optional[Mapping[int, np.ndarray]] = None,
) -> Tuple[Dict[int, int], float]:
    """Return ``(assignment, probability)`` of the most probable explanation.

    ``assignment`` maps every variable in the tree to its MPE state
    (evidence variables keep their observed states); ``probability`` is the
    unnormalized mass of that configuration — for a calibrated tree built
    from a Bayesian network it equals ``P(assignment)``, which includes the
    evidence.
    """
    potentials: Dict[int, PotentialTable] = {}
    for i in range(jt.num_cliques):
        table = jt.potential(i)
        potentials[i] = table.reduce(evidence) if evidence else table.copy()
    for var, weights in (soft_evidence or {}).items():
        host = jt.clique_containing([var])
        table = potentials[host]
        axis = table.variables.index(var)
        weights = np.asarray(weights, dtype=np.float64)
        shape = [1] * len(table.cardinalities)
        shape[axis] = weights.size
        potentials[host] = PotentialTable(
            table.variables,
            table.cardinalities,
            table.values * weights.reshape(shape),
        )

    # Upward max-product collect: every clique's belief ends up holding its
    # own potential times the max-messages of its whole subtree.
    for node in jt.postorder():
        for child in jt.children[node]:
            sep = jt.separator(child, node)
            message = max_marginalize(potentials[child], sep)
            clique = jt.cliques[node]
            potentials[node] = multiply(
                potentials[node],
                extend(message, clique.variables, clique.cardinalities),
            )

    # Viterbi backtrack: fix the root's argmax, then extend downward with
    # separator-consistent argmaxes.
    assignment: Dict[int, int] = {}
    root_choice = _argmax_given(potentials[jt.root], {})
    assignment.update(root_choice)
    probability = float(potentials[jt.root].values.max())
    for node in jt.preorder():
        if node == jt.root:
            continue
        fixed = {
            var: assignment[var]
            for var in jt.cliques[node].variables
            if var in assignment
        }
        assignment.update(_argmax_given(potentials[node], fixed))
    if evidence:
        for var, state in evidence.items():
            if var in assignment and assignment[var] != state:
                # Possible only when the evidence has zero probability.
                assignment[var] = state
    return assignment, probability


def mpe_bruteforce(
    joint: PotentialTable, evidence: Optional[Mapping[int, int]] = None
) -> Tuple[Dict[int, int], float]:
    """Exhaustive MPE over an explicit joint table (testing oracle)."""
    table = joint.reduce(evidence) if evidence else joint
    flat = int(np.argmax(table.values.reshape(-1)))
    coords = np.unravel_index(flat, table.cardinalities)
    assignment = {
        var: int(c) for var, c in zip(table.variables, coords)
    }
    return assignment, float(table.values.reshape(-1)[flat])
