"""The user-facing inference engine.

Typical use::

    from repro import InferenceEngine, random_network

    bn = random_network(40, seed=7)
    engine = InferenceEngine.from_network(bn)
    engine.set_evidence({3: 1, 17: 0})
    engine.propagate()
    posterior = engine.marginal(5)

The engine handles junction-tree construction, critical-path-minimizing
rerooting (Algorithm 1), task-graph construction, and executor dispatch.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Union

import numpy as np

from repro.bn.network import BayesianNetwork
from repro.inference.evidence import Evidence
from repro.jt.build import junction_tree_from_network
from repro.jt.junction_tree import JunctionTree
from repro.jt.rerooting import reroot_optimally
from repro.sched.serial import SerialExecutor
from repro.sched.stats import ExecutionStats
from repro.tasks.dag import build_task_graph
from repro.tasks.state import PropagationState
from repro.tasks.task import TaskGraph


class InferenceEngine:
    """Exact inference over a junction tree with pluggable executors.

    Parameters
    ----------
    junction_tree:
        A junction tree whose potentials are already initialized.
    reroot:
        When True (default), apply Algorithm 1 and reroot the tree at the
        clique minimizing the weighted critical path before building the
        task graph.
    """

    def __init__(self, junction_tree: JunctionTree, reroot: bool = True):
        if len(junction_tree.potentials) != junction_tree.num_cliques:
            raise ValueError(
                "junction tree needs potentials; call initialize_potentials() "
                "or build via InferenceEngine.from_network"
            )
        self.original_root = junction_tree.root
        if reroot:
            junction_tree, root, weight = reroot_optimally(junction_tree)
            self.critical_path_weight = weight
        else:
            from repro.jt.rerooting import critical_path_weight

            self.critical_path_weight = critical_path_weight(junction_tree)
        self.jt = junction_tree
        self.task_graph: TaskGraph = build_task_graph(self.jt)
        self.evidence = Evidence()
        self._state: Optional[PropagationState] = None
        self.last_stats: Optional[ExecutionStats] = None
        # PropagationTrace of the last traced propagate(trace=...), if any.
        self.last_trace = None

    @classmethod
    def from_network(
        cls,
        bn: BayesianNetwork,
        reroot: bool = True,
        heuristic: str = "min-fill",
    ) -> "InferenceEngine":
        """Build the junction tree from a Bayesian network, then the engine."""
        return cls(junction_tree_from_network(bn, heuristic), reroot=reroot)

    # ------------------------------------------------------------------ #
    # Evidence
    # ------------------------------------------------------------------ #

    def set_evidence(self, assignments: Union[Evidence, Mapping[int, int]]):
        """Replace the evidence set; invalidates previous propagation."""
        if isinstance(assignments, Evidence):
            self.evidence = Evidence(assignments.as_dict())
            for var, weights in assignments.soft_as_dict().items():
                self.evidence.observe_soft(var, weights)
        else:
            self.evidence = Evidence(assignments)
        self._state = None
        return self

    def observe(self, variable: int, state: int) -> "InferenceEngine":
        """Add one observation; invalidates previous propagation."""
        self.evidence.observe(variable, state)
        self._state = None
        return self

    # ------------------------------------------------------------------ #
    # Propagation and queries
    # ------------------------------------------------------------------ #

    def observe_soft(self, variable: int, weights) -> "InferenceEngine":
        """Attach virtual (likelihood) evidence; invalidates previous results."""
        self.evidence.observe_soft(variable, weights)
        self._state = None
        return self

    def propagate(
        self, executor=None, resilience=None, trace=None
    ) -> PropagationState:
        """Run two-phase evidence propagation; returns the calibrated state.

        ``executor`` is any object with ``run(task_graph, state)``; defaults
        to :class:`~repro.sched.serial.SerialExecutor`.

        ``resilience`` wraps the executor in a
        :class:`~repro.sched.resilient.ResilientExecutor` (degradation
        cascade + NaN/Inf health guard + log-space underflow rescue):
        pass ``True`` for the defaults, or a dict of ``ResilientExecutor``
        keyword arguments (e.g. ``{"logspace_fallback": False}``).  The
        steps taken, if any, land in ``self.last_stats.degradations``.

        ``trace`` enables the span tracer (:mod:`repro.obs`): pass ``True``
        to record a :class:`~repro.obs.trace.PropagationTrace` into
        ``self.last_trace``, a path to additionally save it as
        Chrome-trace JSON (open in Perfetto), or a prepared
        :class:`~repro.obs.tracer.Tracer` to control its settings.
        Executors that predate tracing still run, just untraced.
        """
        cards = self._cardinalities()
        assignments = self.evidence.checked_against(cards)
        state = PropagationState(
            self.jt, assignments, self.evidence.soft_as_dict()
        )
        executor = executor or SerialExecutor()
        base_executor = executor
        if resilience:
            from repro.sched.resilient import ResilientExecutor

            if not isinstance(executor, ResilientExecutor):
                kwargs = resilience if isinstance(resilience, dict) else {}
                executor = ResilientExecutor(executor, **kwargs)

        tracer = None
        if trace is not None and trace is not False:
            from repro.obs.tracer import Tracer

            tracer = trace if isinstance(trace, Tracer) else Tracer()
            threshold = getattr(base_executor, "partition_threshold", None)
            if threshold is not None:
                tracer.meta["partition_threshold"] = threshold

        if tracer is not None:
            import inspect

            try:
                params = inspect.signature(executor.run).parameters
            except (TypeError, ValueError):
                params = {}
            if "tracer" in params:
                stats = executor.run(self.task_graph, state, tracer=tracer)
            else:
                stats = executor.run(self.task_graph, state)
            self.last_trace = tracer.finalize(
                graph=self.task_graph,
                stats=stats,
                executor=type(base_executor).__name__,
            )
            if isinstance(trace, (str, bytes)) or hasattr(
                trace, "__fspath__"
            ):
                self.last_trace.save(trace)
        else:
            stats = executor.run(self.task_graph, state)
        self.last_stats = stats
        self._state = state
        return state

    def _cardinalities(self):
        cards: Dict[int, int] = {}
        for clique in self.jt.cliques:
            for var, card in zip(clique.variables, clique.cardinalities):
                cards[var] = card
        size = max(cards) + 1 if cards else 0
        vec = [0] * size
        for var, card in cards.items():
            vec[var] = card
        return vec

    def _require_state(self) -> PropagationState:
        if self._state is None:
            raise RuntimeError(
                "no propagation results; call propagate() after setting evidence"
            )
        return self._state

    def marginal(self, variable: int) -> np.ndarray:
        """Posterior ``P(variable | evidence)``; requires propagate() first."""
        return self._require_state().marginal(variable)

    def marginals_all(self) -> Dict[int, np.ndarray]:
        """Posterior of every variable in the tree, keyed by variable id."""
        state = self._require_state()
        variables = set()
        for clique in self.jt.cliques:
            variables.update(clique.variables)
        return {v: state.marginal(v) for v in sorted(variables)}

    def clique_marginal(self, clique: int):
        """Normalized joint over one clique's scope."""
        return self._require_state().clique_marginal(clique)

    def likelihood(self) -> float:
        """Probability of the evidence, ``P(e)``."""
        return self._require_state().likelihood()

    def mpe(self):
        """Most probable explanation under the current evidence.

        Returns ``(assignment, probability)``; runs its own max-product
        pass, independent of :meth:`propagate`.
        """
        from repro.inference.mpe import max_propagate

        cards = self._cardinalities()
        assignments = self.evidence.checked_against(cards)
        return max_propagate(
            self.jt, assignments, self.evidence.soft_as_dict()
        )

    def __repr__(self) -> str:
        return (
            f"InferenceEngine(cliques={self.jt.num_cliques}, "
            f"tasks={self.task_graph.num_tasks}, root={self.jt.root})"
        )
