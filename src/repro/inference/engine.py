"""The user-facing inference engine.

Typical use::

    from repro import InferenceEngine, random_network

    bn = random_network(40, seed=7)
    engine = InferenceEngine.from_network(bn)
    engine.set_evidence({3: 1, 17: 0})
    engine.propagate()
    posterior = engine.marginal(5)

The engine handles junction-tree construction, critical-path-minimizing
rerooting (Algorithm 1), task-graph construction, and executor dispatch.

Evidence may be changed at any time — including by mutating
``engine.evidence`` directly — and queries always answer against the
*current* findings: the engine compares ``Evidence.version`` against the
version its cached propagation reflects and transparently repropagates
when they diverge.  When the previous propagation is reusable, the
repropagation is *incremental*: only cliques whose evidence context
changed (plus their root-ward closure) are recomputed, via a restricted
task graph that every executor runs through the unchanged
``run(task_graph, state)`` contract (see
:mod:`repro.inference.incremental`).  Repeated queries under identical
findings are served from an evidence-keyed :class:`~repro.inference.cache.QueryCache`.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Union

import numpy as np

from repro.bn.network import BayesianNetwork
from repro.inference.cache import QueryCache
from repro.inference.evidence import Evidence
from repro.inference.incremental import (
    distribute_edges_for,
    plan_incremental,
)
from repro.jt.build import junction_tree_from_network
from repro.jt.junction_tree import JunctionTree
from repro.jt.rerooting import reroot_optimally
from repro.sched.serial import SerialExecutor
from repro.sched.stats import ExecutionStats
from repro.tasks.dag import build_task_graph
from repro.tasks.state import PropagationState
from repro.tasks.task import TaskGraph


class InferenceEngine:
    """Exact inference over a junction tree with pluggable executors.

    Parameters
    ----------
    junction_tree:
        A junction tree whose potentials are already initialized.
    reroot:
        When True (default), apply Algorithm 1 and reroot the tree at the
        clique minimizing the weighted critical path before building the
        task graph.
    cache_size:
        Capacity (distinct evidence signatures) of the query cache.
    """

    def __init__(
        self,
        junction_tree: JunctionTree,
        reroot: bool = True,
        cache_size: int = 128,
    ):
        if len(junction_tree.potentials) != junction_tree.num_cliques:
            raise ValueError(
                "junction tree needs potentials; call initialize_potentials() "
                "or build via InferenceEngine.from_network"
            )
        self.original_root = junction_tree.root
        if reroot:
            junction_tree, root, weight = reroot_optimally(junction_tree)
            self.critical_path_weight = weight
        else:
            from repro.jt.rerooting import critical_path_weight

            self.critical_path_weight = critical_path_weight(junction_tree)
        self.jt = junction_tree
        self.task_graph: TaskGraph = build_task_graph(self.jt)
        # Batch-scaled task graphs keyed by batch size B (built lazily;
        # sizes scale by B so partition plans match the batched state).
        self._batch_graphs: Dict[int, TaskGraph] = {}
        self.evidence = Evidence()
        self.cache = QueryCache(cache_size)
        self._state: Optional[PropagationState] = None
        # (id(evidence), evidence.version) that self._state reflects; a
        # mismatch means the findings moved and queries must repropagate.
        self._evidence_token = None
        # Cliques of self._state not yet calibrated to its evidence
        # (lazy distribute: a targeted query refreshes only the cliques
        # on the root-to-host paths and leaves the rest stale).
        self._stale: Set[int] = set()
        self.last_stats: Optional[ExecutionStats] = None
        # PropagationTrace of the last traced propagate(trace=...), if any.
        self.last_trace = None
        # Re-entrancy guard: propagate()/query()/marginal() read and
        # replace self._state, self._stale and self._evidence_token as one
        # transaction; two threads interleaving _sync would leave a
        # half-calibrated state behind.  An RLock (not a Lock) because
        # query() calls propagate() under the same guard.  Multi-threaded
        # callers that need *throughput* rather than mere safety should
        # use one engine per thread via repro.serve.EngineSessionPool —
        # this lock serializes, it does not parallelize.
        self._lock = threading.RLock()

    @classmethod
    def from_network(
        cls,
        bn: BayesianNetwork,
        reroot: bool = True,
        heuristic: str = "min-fill",
    ) -> "InferenceEngine":
        """Build the junction tree from a Bayesian network, then the engine."""
        return cls(junction_tree_from_network(bn, heuristic), reroot=reroot)

    # ------------------------------------------------------------------ #
    # Evidence
    # ------------------------------------------------------------------ #

    def set_evidence(self, assignments: Union[Evidence, Mapping[int, int]]):
        """Replace the evidence set; queries will repropagate as needed.

        The previous propagation is kept so the next run can reuse the
        parts of the tree whose findings did not change.
        """
        with self._lock:
            if isinstance(assignments, Evidence):
                self.evidence = Evidence(assignments.as_dict())
                for var, weights in assignments.soft_as_dict().items():
                    self.evidence.observe_soft(var, weights)
            else:
                self.evidence = Evidence(assignments)
            return self

    def observe(self, variable: int, state: int) -> "InferenceEngine":
        """Add one observation; queries will repropagate as needed."""
        with self._lock:
            self.evidence.observe(variable, state)
        return self

    def observe_soft(self, variable: int, weights) -> "InferenceEngine":
        """Attach virtual (likelihood) evidence; queries repropagate as needed."""
        with self._lock:
            self.evidence.observe_soft(variable, weights)
        return self

    def retract(self, variable: int) -> "InferenceEngine":
        """Remove the finding (hard or soft) on one variable, if any."""
        with self._lock:
            self.evidence.retract(variable)
        return self

    # ------------------------------------------------------------------ #
    # Propagation
    # ------------------------------------------------------------------ #

    def propagate(
        self, executor=None, resilience=None, trace=None, incremental="auto",
        deadline=None,
    ) -> PropagationState:
        """Run two-phase evidence propagation; returns the calibrated state.

        ``executor`` is any object with ``run(task_graph, state)``; defaults
        to :class:`~repro.sched.serial.SerialExecutor`.

        ``resilience`` wraps the executor in a
        :class:`~repro.sched.resilient.ResilientExecutor` (degradation
        cascade + NaN/Inf health guard + log-space underflow rescue):
        pass ``True`` for the defaults, or a dict of ``ResilientExecutor``
        keyword arguments (e.g. ``{"logspace_fallback": False}``).  The
        steps taken, if any, land in ``self.last_stats.degradations``.

        ``trace`` enables the span tracer (:mod:`repro.obs`): pass ``True``
        to record a :class:`~repro.obs.trace.PropagationTrace` into
        ``self.last_trace``, a path to additionally save it as
        Chrome-trace JSON (open in Perfetto), or a prepared
        :class:`~repro.obs.tracer.Tracer` to control its settings.
        Executors that predate tracing still run, just untraced.

        ``incremental`` controls reuse of the previous propagation:

        * ``"auto"`` (default) — repropagate incrementally when a previous
          state exists and the findings moved by a sound, nonempty delta;
          otherwise run the full graph (an unchanged-evidence
          ``propagate()`` still re-runs fully, preserving the historical
          re-run semantics benchmarks rely on).
        * ``True`` — as ``"auto"``, but an unchanged-evidence call reuses
          the previous state outright (zero tasks when already calibrated).
        * ``False`` — always run the full graph.

        Incremental runs execute a *restricted* task graph — only the
        collect pipelines under changed cliques plus the distribute
        pipelines to stale cliques — and are numerically equivalent to a
        full run; ``self.last_stats.tasks_skipped`` records the savings.

        ``deadline`` is an absolute :func:`time.monotonic` instant
        forwarded to executors that support cooperative deadline checks;
        an overrun raises :class:`~repro.sched.faults.TaskExecutionError`
        with ``phase="deadline"`` and leaves the previous propagation
        (and the evidence-staleness bookkeeping) untouched, so the next
        call simply repropagates.
        """
        with self._lock:
            return self._propagate_locked(
                executor=executor, resilience=resilience, trace=trace,
                incremental=incremental, deadline=deadline,
            )

    def _propagate_locked(
        self, executor=None, resilience=None, trace=None, incremental="auto",
        deadline=None,
    ) -> PropagationState:
        cards = self._cardinalities()
        assignments = self.evidence.checked_against(cards)
        soft = self.evidence.soft_as_dict()

        plan = None
        if incremental and self._state is not None:
            plan = plan_incremental(self.jt, self._state, assignments, soft)

        if plan is not None and not plan.changed_variables:
            if incremental is True:
                # Same findings: calibrate whatever is still stale, reuse.
                state = self._top_up(executor=executor, targets=None)
                self._mark_synced()
                return state
            plan = None  # "auto": preserve full re-run semantics

        if plan is None:
            state = PropagationState(self.jt, assignments, soft)
            graph = self.task_graph
            stale_after: Set[int] = set()
            meta = {"mode": "full"}
        else:
            state = PropagationState.incremental(
                self._state,
                evidence=assignments,
                soft_evidence=soft,
                rebuild=sorted(plan.rebuild),
            )
            # Full calibration: every non-root clique is stale under the
            # new findings, so distribute covers the whole tree (None).
            graph = build_task_graph(
                self.jt,
                collect_edges=plan.collect_edges,
                distribute_edges=None,
            )
            stale_after = set()
            meta = {
                "mode": "incremental",
                "dirty_cliques": len(plan.dirty),
                "rebuilt_cliques": len(plan.rebuild),
                "tasks_skipped": self.task_graph.num_tasks - graph.num_tasks,
            }

        stats = self._run_graph(
            graph, state, executor=executor, resilience=resilience,
            trace=trace, meta=meta, deadline=deadline,
        )
        if plan is not None:
            stats.incremental = True
            stats.tasks_skipped = self.task_graph.num_tasks - graph.num_tasks
        self.last_stats = stats
        self._state = state
        self._stale = stale_after
        self._mark_synced()
        return state

    # ------------------------------------------------------------------ #
    # Batched propagation (B evidence cases through one DAG traversal)
    # ------------------------------------------------------------------ #

    def _case_findings(self, case):
        """Normalize one batch case to ``(hard, soft, signature)``.

        ``case`` is an :class:`Evidence` or a mapping of findings in the
        :meth:`query` delta style (``int`` observes hard, a weight
        sequence attaches soft evidence; ``None`` entries are ignored —
        a standalone case has nothing to retract from).
        """
        if isinstance(case, Evidence):
            ev = case
        else:
            ev = Evidence()
            for var, finding in (case or {}).items():
                if finding is None:
                    continue
                if isinstance(finding, (int, np.integer)):
                    ev.observe(int(var), int(finding))
                else:
                    ev.observe_soft(int(var), finding)
        hard = ev.checked_against(self._cardinalities())
        return hard, ev.soft_as_dict(), ev.signature()

    def _batch_graph(self, batch: int) -> TaskGraph:
        if batch == 1:
            return self.task_graph
        graph = self._batch_graphs.get(batch)
        if graph is None:
            graph = build_task_graph(self.jt, batch=batch)
            self._batch_graphs[batch] = graph
        return graph

    def _propagate_cases(
        self, cases, executor=None, deadline=None
    ) -> PropagationState:
        """Propagate normalized cases; always returns a *batched* state.

        Executors that refuse batched states (the process tier sets
        ``supports_batched_state = False``) run each case separately and
        the results are stacked, preserving the return-type contract.
        """
        executor = executor or SerialExecutor()
        if not getattr(executor, "supports_batched_state", True):
            singles = []
            for hard, soft, _sig in cases:
                state = PropagationState(self.jt, hard, soft)
                self.last_stats = self._run_graph(
                    self.task_graph, state, executor=executor,
                    meta={"mode": "batch-fallback"}, deadline=deadline,
                )
                singles.append(state)
            return PropagationState.from_cases(singles)
        graph = self._batch_graph(len(cases))
        state = PropagationState.batched(
            self.jt, [(hard, soft) for hard, soft, _sig in cases]
        )
        self.last_stats = self._run_graph(
            graph, state, executor=executor,
            meta={"mode": "batch", "batch": len(cases)}, deadline=deadline,
        )
        return state

    def propagate_batch(
        self, evidences, executor=None, deadline=None
    ) -> PropagationState:
        """Propagate ``B`` independent evidence cases in one DAG traversal.

        ``evidences`` is a sequence of cases (each an :class:`Evidence`
        or a ``{variable: finding}`` mapping — ``int`` for hard evidence,
        a weight sequence for soft).  Returns the *batched*
        :class:`~repro.tasks.state.PropagationState`: ``marginal(v)`` has
        shape ``(B, card)`` and ``likelihood()`` shape ``(B,)``, row ``i``
        matching a fresh single-case run of case ``i`` exactly.

        Independent of the engine's single-case evidence machinery:
        ``engine.evidence`` and the incremental-repropagation state are
        untouched.  Executors without batched-state support run per case
        and the results are stacked.
        """
        with self._lock:
            cases = [self._case_findings(e) for e in evidences]
            if not cases:
                raise ValueError("propagate_batch needs at least one case")
            return self._propagate_cases(
                cases, executor=executor, deadline=deadline
            )

    def query_batch(
        self,
        evidences,
        vars: Optional[Iterable[int]] = None,
        executor=None,
        deadline=None,
    ) -> List[Dict[int, np.ndarray]]:
        """Marginals for ``B`` evidence cases via one batched propagation.

        Returns one ``{variable: posterior}`` dict per case, in input
        order.  Results are memoized in :attr:`cache` under each case's
        *own* evidence signature — a batch warm-up therefore populates
        exactly the entries later single-case :meth:`query`/:meth:`marginal`
        calls hit — and cases fully answerable from the cache are not
        re-propagated at all.
        """
        with self._lock:
            cases = [self._case_findings(e) for e in evidences]
            if not cases:
                return []
            if vars is None:
                variables: Set[int] = set()
                for clique in self.jt.cliques:
                    variables.update(clique.variables)
                requested = sorted(variables)
            else:
                requested = [int(v) for v in vars]

            results: List[Optional[Dict[int, np.ndarray]]] = [None] * len(cases)
            missing: List[int] = []
            for i, (_hard, _soft, sig) in enumerate(cases):
                answer: Dict[int, np.ndarray] = {}
                for var in requested:
                    cached = self.cache.get_marginal(sig, var)
                    if cached is None:
                        answer = None
                        break
                    answer[var] = cached
                if answer is None:
                    missing.append(i)
                else:
                    results[i] = answer
            if missing:
                state = self._propagate_cases(
                    [cases[i] for i in missing], executor=executor,
                    deadline=deadline,
                )
                likelihoods = state.likelihood()
                for var in requested:
                    rows = state.marginal(var)
                    for row, i in enumerate(missing):
                        sig = cases[i][2]
                        self.cache.put_marginal(sig, var, rows[row])
                        if results[i] is None:
                            results[i] = {}
                        results[i][var] = self.cache.get_marginal(sig, var)
                for row, i in enumerate(missing):
                    self.cache.put_likelihood(
                        cases[i][2], float(likelihoods[row])
                    )
            return results

    # ------------------------------------------------------------------ #
    # Checkpoint / restore
    # ------------------------------------------------------------------ #

    def checkpoint(self, path) -> Dict[str, object]:
        """Persist the engine's calibrated state to ``path``.

        Fully calibrates first (repropagating or topping up stale cliques
        as needed), so the checkpoint always reflects the *current*
        evidence.  ``path`` may be a filesystem path or a binary
        file-like object.  Returns the embedded manifest.  Raises
        ``RuntimeError`` if the engine has never propagated.
        """
        with self._lock:
            state = self._sync()
            return state.save(path)

    def restore(self, path) -> "InferenceEngine":
        """Adopt a checkpointed state (and its evidence) from ``path``.

        The checkpoint must have been taken from an engine over the same
        junction tree — same clique scopes, topology and prior
        potentials — or loading refuses with
        :class:`~repro.integrity.checkpoint.CheckpointMismatch`; tampered
        bytes refuse with
        :class:`~repro.integrity.checkpoint.CheckpointCorrupt`.  On
        success the engine answers queries bit-identically to the engine
        that saved, without repropagating.
        """
        with self._lock:
            state = PropagationState.load(self.jt, path)
            self.evidence = Evidence(state.evidence)
            for var, weights in state.soft_evidence.items():
                self.evidence.observe_soft(var, weights)
            self._state = state
            self._stale = set()
            self._mark_synced()
        return self

    @classmethod
    def from_checkpoint(
        cls,
        junction_tree: JunctionTree,
        path,
        reroot: bool = True,
        cache_size: int = 128,
    ) -> "InferenceEngine":
        """Build an engine over ``junction_tree`` and restore ``path``.

        ``reroot`` must match the flag the checkpointing engine was built
        with — rerooting changes the tree's parent vector, which the
        checkpoint's tree signature covers.
        """
        engine = cls(junction_tree, reroot=reroot, cache_size=cache_size)
        return engine.restore(path)

    # ------------------------------------------------------------------ #
    # Query API
    # ------------------------------------------------------------------ #

    def query(
        self,
        evidence_delta: Optional[Mapping[int, object]] = None,
        vars: Optional[Iterable[int]] = None,
    ) -> Dict[int, np.ndarray]:
        """Apply an evidence delta, return posterior marginals.

        ``evidence_delta`` maps variables to their new finding: an ``int``
        observes a hard state, a sequence of weights attaches soft
        (virtual) evidence, and ``None`` retracts the variable's finding.
        The delta is applied to ``engine.evidence`` (it persists across
        calls, like :meth:`observe`).  ``vars`` selects which marginals to
        return (default: every variable in the tree).

        Repropagation is incremental and *targeted*: only the cliques on
        the paths from the root to the requested variables' host cliques
        are refreshed, everything else stays lazily stale until asked
        for.  Results are memoized in :attr:`cache` under the canonical
        evidence signature, so repeated and near-duplicate queries are
        answered without touching the tree.  The first-ever query (no
        previous propagation) runs a full serial propagation.
        """
        with self._lock:
            return self._query_locked(evidence_delta, vars)

    def _query_locked(
        self,
        evidence_delta: Optional[Mapping[int, object]] = None,
        vars: Optional[Iterable[int]] = None,
    ) -> Dict[int, np.ndarray]:
        for var, finding in (evidence_delta or {}).items():
            if finding is None:
                self.evidence.retract(var)
            elif isinstance(finding, (int, np.integer)):
                self.evidence.observe(var, int(finding))
            else:
                self.evidence.observe_soft(var, finding)

        if vars is None:
            variables: Set[int] = set()
            for clique in self.jt.cliques:
                variables.update(clique.variables)
            requested = sorted(variables)
        else:
            requested = [int(v) for v in vars]

        if self._state is None:
            self.propagate()

        signature = self.evidence.signature()
        results: Dict[int, np.ndarray] = {}
        missing = []
        for var in requested:
            cached = self.cache.get_marginal(signature, var)
            if cached is not None:
                results[var] = cached
            else:
                missing.append(var)
        if missing:
            hosts = {self.jt.clique_containing([v]) for v in missing}
            state = self._sync(targets=hosts)
            for var in missing:
                values = state.marginal(var)
                self.cache.put_marginal(signature, var, values)
                results[var] = values
        return results

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _cardinalities(self):
        cards: Dict[int, int] = {}
        for clique in self.jt.cliques:
            for var, card in zip(clique.variables, clique.cardinalities):
                cards[var] = card
        size = max(cards) + 1 if cards else 0
        vec = [0] * size
        for var, card in cards.items():
            vec[var] = card
        return vec

    def _mark_synced(self) -> None:
        self._evidence_token = (id(self.evidence), self.evidence.version)

    def _run_graph(
        self, graph, state, executor=None, resilience=None, trace=None,
        meta: Optional[Mapping[str, object]] = None, deadline=None,
    ) -> ExecutionStats:
        """Run ``graph`` against ``state``, handling resilience and tracing."""
        executor = executor or SerialExecutor()
        base_executor = executor
        if resilience:
            from repro.sched.resilient import ResilientExecutor

            if not isinstance(executor, ResilientExecutor):
                kwargs = resilience if isinstance(resilience, dict) else {}
                executor = ResilientExecutor(executor, **kwargs)

        tracer = None
        if trace is not None and trace is not False:
            from repro.obs.tracer import Tracer

            tracer = trace if isinstance(trace, Tracer) else Tracer()
            threshold = getattr(base_executor, "partition_threshold", None)
            if threshold is not None:
                tracer.meta["partition_threshold"] = threshold
            for key, value in (meta or {}).items():
                tracer.meta[key] = value

        run_kwargs = {}
        if deadline is not None:
            import inspect

            try:
                params = inspect.signature(executor.run).parameters
            except (TypeError, ValueError):
                params = {}
            if "deadline" in params:
                run_kwargs["deadline"] = deadline

        if tracer is not None:
            import inspect

            try:
                params = inspect.signature(executor.run).parameters
            except (TypeError, ValueError):
                params = {}
            if "tracer" in params:
                stats = executor.run(graph, state, tracer=tracer, **run_kwargs)
            else:
                stats = executor.run(graph, state, **run_kwargs)
            # Label the trace with the executor that actually completed
            # the run: after a ResilientExecutor degradation cascade the
            # requested executor's name and partition threshold would
            # mislabel it (stats.completed_executor records the survivor).
            executor_name = type(base_executor).__name__
            if stats.completed_executor:
                if stats.completed_executor != executor_name:
                    tracer.meta["requested_executor"] = executor_name
                executor_name = stats.completed_executor
                if stats.completed_partition_threshold is not None:
                    tracer.meta["partition_threshold"] = (
                        stats.completed_partition_threshold
                    )
                else:
                    tracer.meta.pop("partition_threshold", None)
            if stats.degradations:
                tracer.meta["degradations"] = [
                    str(r) for r in stats.degradations
                ]
            self.last_trace = tracer.finalize(
                graph=graph, stats=stats, executor=executor_name,
            )
            if isinstance(trace, (str, bytes)) or hasattr(
                trace, "__fspath__"
            ):
                self.last_trace.save(trace)
        else:
            stats = executor.run(graph, state, **run_kwargs)
        return stats

    def _top_up(
        self, executor=None, targets: Optional[Set[int]] = None
    ) -> PropagationState:
        """Distribute to still-stale cliques of the current state."""
        state = self._state
        edges = distribute_edges_for(self.jt, self._stale, targets)
        if edges:
            graph = build_task_graph(
                self.jt, collect_edges=(), distribute_edges=edges
            )
            stats = self._run_graph(graph, state, executor=executor)
            stats.incremental = True
            stats.tasks_skipped = self.task_graph.num_tasks - graph.num_tasks
            self.last_stats = stats
            self._stale -= {child for _, child in edges}
        return state

    def _sync(
        self, targets: Optional[Set[int]] = None
    ) -> PropagationState:
        """Make the cached state answer queries on ``targets`` correctly.

        Four cases, cheapest first: no propagation yet (raise — the
        caller never asked for one), evidence unchanged and targets fresh
        (no-op), evidence unchanged but targets stale (distribute top-up),
        evidence changed (incremental repropagation with distribution
        restricted to the targets; full propagation when the incremental
        plan is unsound).
        """
        if self._state is None:
            raise RuntimeError(
                "no propagation results; call propagate() after setting evidence"
            )
        if self._evidence_token != (id(self.evidence), self.evidence.version):
            cards = self._cardinalities()
            assignments = self.evidence.checked_against(cards)
            soft = self.evidence.soft_as_dict()
            plan = plan_incremental(self.jt, self._state, assignments, soft)
            if plan is None:
                # Unsound reuse (weakening delta over zeroed separators,
                # or missing collect messages): full repropagation.
                state = PropagationState(self.jt, assignments, soft)
                self.last_stats = SerialExecutor().run(self.task_graph, state)
                self._state = state
                self._stale = set()
            elif plan.changed_variables:
                state = PropagationState.incremental(
                    self._state,
                    evidence=assignments,
                    soft_evidence=soft,
                    rebuild=sorted(plan.rebuild),
                )
                stale = set(range(self.jt.num_cliques)) - {self.jt.root}
                edges = distribute_edges_for(self.jt, stale, targets)
                graph = build_task_graph(
                    self.jt,
                    collect_edges=plan.collect_edges,
                    distribute_edges=edges,
                )
                stats = SerialExecutor().run(graph, state)
                stats.incremental = True
                stats.tasks_skipped = (
                    self.task_graph.num_tasks - graph.num_tasks
                )
                self.last_stats = stats
                self._state = state
                self._stale = stale - {child for _, child in edges}
            self._mark_synced()
        if self._stale and (targets is None or (targets & self._stale)):
            self._top_up(targets=targets)
        return self._state

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def marginal(self, variable: int) -> np.ndarray:
        """Posterior ``P(variable | evidence)``; requires propagate() first.

        Always reflects the *current* findings: if ``engine.evidence``
        changed since the last propagation (including direct mutation,
        e.g. ``engine.evidence.retract(v)``), the engine transparently
        repropagates — incrementally where sound — before answering.
        """
        with self._lock:
            signature = self.evidence.signature()
            cached = self.cache.get_marginal(signature, variable)
            if cached is not None and self._state is not None:
                return cached
            host = self.jt.clique_containing([variable])
            values = self._sync(targets={host}).marginal(variable)
            self.cache.put_marginal(signature, variable, values)
            return values

    def marginals_all(self) -> Dict[int, np.ndarray]:
        """Posterior of every variable in the tree, keyed by variable id."""
        with self._lock:
            state = self._sync()
            variables = set()
            for clique in self.jt.cliques:
                variables.update(clique.variables)
            return {v: state.marginal(v) for v in sorted(variables)}

    def clique_marginal(self, clique: int):
        """Normalized joint over one clique's scope."""
        with self._lock:
            return self._sync(targets={clique}).clique_marginal(clique)

    def joint_marginal(self, variables: Iterable[int]):
        """Normalized joint posterior over ``variables``.

        The variables must share a clique (raises ``KeyError`` otherwise
        — exact joints across cliques would need an out-of-tree
        multiplication this engine deliberately does not do).  Used by
        the streaming layer to extract the forward-interface joint when a
        filtering window retires slices.
        """
        from repro.potential.primitives import marginalize

        wanted = sorted(int(v) for v in variables)
        if not wanted:
            raise ValueError("joint_marginal needs at least one variable")
        with self._lock:
            host = self.jt.clique_containing(wanted)
            table = self._sync(targets={host}).clique_marginal(host)
            return marginalize(table, wanted).aligned_to(wanted).normalize()

    def likelihood(self) -> float:
        """Probability of the evidence, ``P(e)``."""
        with self._lock:
            signature = self.evidence.signature()
            cached = self.cache.get_likelihood(signature)
            if cached is not None and self._state is not None:
                return cached
            value = self._sync(targets={self.jt.root}).likelihood()
            self.cache.put_likelihood(signature, value)
            return value

    def mpe(self):
        """Most probable explanation under the current evidence.

        Returns ``(assignment, probability)``; runs its own max-product
        pass, independent of :meth:`propagate`.
        """
        from repro.inference.mpe import max_propagate

        with self._lock:
            cards = self._cardinalities()
            assignments = self.evidence.checked_against(cards)
            soft = self.evidence.soft_as_dict()
        return max_propagate(self.jt, assignments, soft)

    def __repr__(self) -> str:
        return (
            f"InferenceEngine(cliques={self.jt.num_cliques}, "
            f"tasks={self.task_graph.num_tasks}, root={self.jt.root})"
        )
