"""Marginal MAP queries: maximize over a subset, sum over the rest.

Marginal MAP — ``argmax_M Σ_R P(M, R, e)`` — is harder than both plain
marginals and full MPE (max and sum do not commute), and junction-tree
propagation alone cannot answer it unless the MAP variables happen to be
eliminated last.  For small MAP sets the standard exact approach is
enumeration: evaluate the evidence likelihood with each joint MAP
assignment clamped.  The lazy Shafer-Shenoy engine makes the sweep cheap —
between assignments only the MAP hosts' outbound messages invalidate.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.inference.shafershenoy import ShaferShenoyEngine
from repro.jt.junction_tree import JunctionTree


def marginal_map(
    jt: JunctionTree,
    map_variables: Sequence[int],
    evidence: Optional[Mapping[int, int]] = None,
) -> Tuple[Dict[int, int], float]:
    """Exact marginal MAP by enumeration over the MAP variables.

    Returns ``(assignment, score)`` where ``score = P(assignment, e)``
    (unnormalized by ``P(e)``).  Complexity is exponential in
    ``len(map_variables)`` — intended for small MAP sets.
    """
    map_variables = [int(v) for v in map_variables]
    if not map_variables:
        raise ValueError("need at least one MAP variable")
    if len(set(map_variables)) != len(map_variables):
        raise ValueError("MAP variables must be distinct")
    evidence = dict(evidence or {})
    overlap = set(map_variables) & set(evidence)
    if overlap:
        raise ValueError(f"MAP variables {sorted(overlap)} are observed")

    engine = ShaferShenoyEngine(jt)
    cards = []
    for v in map_variables:
        host = jt.clique_containing([v])
        cards.append(jt.cliques[host].card_of(v))
    for var, state in evidence.items():
        engine.observe(var, state)

    best_score = float("-inf")
    best_assignment: Dict[int, int] = {}
    for combo in product(*(range(c) for c in cards)):
        for var, state in zip(map_variables, combo):
            engine.observe(var, state)
        score = engine.likelihood()
        if score > best_score:
            best_score = score
            best_assignment = dict(zip(map_variables, combo))
    for var in map_variables:
        engine.retract(var)
    return best_assignment, best_score


def marginal_map_bruteforce(
    joint, map_variables: Sequence[int], evidence=None
) -> Tuple[Dict[int, int], float]:
    """Oracle: marginal MAP from an explicit joint table."""
    from repro.potential.primitives import marginalize

    table = joint.reduce(evidence) if evidence else joint
    marg = marginalize(table, tuple(map_variables))
    import numpy as np

    flat = int(np.argmax(marg.values.reshape(-1)))
    coords = np.unravel_index(flat, marg.cardinalities)
    assignment = {
        var: int(c) for var, c in zip(marg.variables, coords)
    }
    return assignment, float(marg.values.reshape(-1)[flat])
