"""Evidence: observed variable assignments (hard and soft) to propagate.

*Hard* evidence instantiates a variable to one state.  *Soft* (virtual /
likelihood) evidence attaches a non-negative weight per state — the
classic Pearl virtual-evidence node — and is absorbed by multiplying the
weight vector into a clique containing the variable.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Sequence, Tuple

import numpy as np


class Evidence:
    """A set of instantiated variables ``{variable: state}`` plus soft findings.

    Thin validated mapping; :meth:`checked_against` verifies states are in
    range for a given cardinality vector before propagation starts.
    """

    def __init__(self, assignments: Mapping[int, int] = None):
        self._assignments: Dict[int, int] = {}
        self._soft: Dict[int, np.ndarray] = {}
        for var, state in (assignments or {}).items():
            self.observe(int(var), int(state))

    def observe(self, variable: int, state: int) -> None:
        """Record ``variable = state``; re-observing overwrites."""
        if variable < 0:
            raise ValueError(f"variable id must be non-negative, got {variable}")
        if state < 0:
            raise ValueError(f"state must be non-negative, got {state}")
        self._assignments[variable] = state

    def observe_soft(self, variable: int, weights: Sequence[float]) -> None:
        """Attach a likelihood vector to ``variable`` (virtual evidence).

        ``weights`` must be non-negative with at least one positive entry;
        it need not be normalized.  Re-observing overwrites.
        """
        if variable < 0:
            raise ValueError(f"variable id must be non-negative, got {variable}")
        arr = np.asarray(weights, dtype=np.float64)
        if arr.ndim != 1 or arr.size < 2:
            raise ValueError("soft evidence needs a 1-D vector of >= 2 weights")
        if np.any(arr < 0) or not np.any(arr > 0):
            raise ValueError(
                "soft-evidence weights must be non-negative with a positive entry"
            )
        self._soft[variable] = arr

    def retract(self, variable: int) -> None:
        """Remove an observation (hard or soft); missing variables ignored."""
        self._assignments.pop(variable, None)
        self._soft.pop(variable, None)

    def checked_against(self, cardinalities) -> Dict[int, int]:
        """Validate and return a plain dict of hard assignments."""
        for var, state in self._assignments.items():
            if var >= len(cardinalities):
                raise ValueError(f"evidence variable {var} does not exist")
            if state >= cardinalities[var]:
                raise ValueError(
                    f"evidence state {state} out of range for variable {var} "
                    f"with {cardinalities[var]} states"
                )
        for var, weights in self._soft.items():
            if var >= len(cardinalities):
                raise ValueError(f"evidence variable {var} does not exist")
            if weights.size != cardinalities[var]:
                raise ValueError(
                    f"soft evidence for variable {var} has {weights.size} "
                    f"weights, variable has {cardinalities[var]} states"
                )
        return dict(self._assignments)

    def soft_as_dict(self) -> Dict[int, np.ndarray]:
        """Copy of the soft findings, ``{variable: weight vector}``."""
        return {var: weights.copy() for var, weights in self._soft.items()}

    @property
    def has_soft(self) -> bool:
        return bool(self._soft)

    def as_dict(self) -> Dict[int, int]:
        return dict(self._assignments)

    def __len__(self) -> int:
        return len(self._assignments)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(self._assignments.items())

    def __contains__(self, variable: int) -> bool:
        return variable in self._assignments

    def __repr__(self) -> str:
        return f"Evidence({self._assignments})"
