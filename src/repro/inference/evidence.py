"""Evidence: observed variable assignments (hard and soft) to propagate.

*Hard* evidence instantiates a variable to one state.  *Soft* (virtual /
likelihood) evidence attaches a non-negative weight per state — the
classic Pearl virtual-evidence node — and is absorbed by multiplying the
weight vector into a clique containing the variable.

Every mutation bumps a monotonically increasing :attr:`Evidence.version`.
Consumers holding propagation results keyed to an older version (the
:class:`~repro.inference.engine.InferenceEngine`) use it to detect that
their cached state is stale; :func:`evidence_delta` diffs two evidence
snapshots into the changed-variable set that drives incremental
repropagation.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Sequence, Set, Tuple

import numpy as np


class Evidence:
    """A set of instantiated variables ``{variable: state}`` plus soft findings.

    Thin validated mapping; :meth:`checked_against` verifies states are in
    range for a given cardinality vector before propagation starts.
    """

    def __init__(self, assignments: Mapping[int, int] = None):
        self._assignments: Dict[int, int] = {}
        self._soft: Dict[int, np.ndarray] = {}
        self._version = 0
        for var, state in (assignments or {}).items():
            self.observe(int(var), int(state))

    @property
    def version(self) -> int:
        """Monotonically increasing mutation counter.

        Bumped by every :meth:`observe`, :meth:`observe_soft` and
        :meth:`retract` call (even no-op ones), so ``version`` equality
        guarantees the findings are byte-identical to when a consumer
        snapshotted them.
        """
        return self._version

    def observe(self, variable: int, state: int) -> None:
        """Record ``variable = state``; re-observing overwrites."""
        if variable < 0:
            raise ValueError(f"variable id must be non-negative, got {variable}")
        if state < 0:
            raise ValueError(f"state must be non-negative, got {state}")
        self._assignments[variable] = state
        self._soft.pop(variable, None)
        self._version += 1

    def observe_soft(self, variable: int, weights: Sequence[float]) -> None:
        """Attach a likelihood vector to ``variable`` (virtual evidence).

        ``weights`` must be non-negative with at least one positive entry;
        it need not be normalized.  Re-observing overwrites; a previous
        *hard* finding on the variable is replaced by the soft one.
        """
        if variable < 0:
            raise ValueError(f"variable id must be non-negative, got {variable}")
        arr = np.asarray(weights, dtype=np.float64)
        if arr.ndim != 1 or arr.size < 2:
            raise ValueError("soft evidence needs a 1-D vector of >= 2 weights")
        if np.any(arr < 0) or not np.any(arr > 0):
            raise ValueError(
                "soft-evidence weights must be non-negative with a positive entry"
            )
        self._soft[variable] = arr
        self._assignments.pop(variable, None)
        self._version += 1

    def retract(self, variable: int) -> None:
        """Remove an observation (hard or soft); missing variables ignored."""
        self._assignments.pop(variable, None)
        self._soft.pop(variable, None)
        self._version += 1

    def checked_against(self, cardinalities) -> Dict[int, int]:
        """Validate and return a plain dict of hard assignments."""
        for var, state in self._assignments.items():
            if var >= len(cardinalities):
                raise ValueError(f"evidence variable {var} does not exist")
            if state >= cardinalities[var]:
                raise ValueError(
                    f"evidence state {state} out of range for variable {var} "
                    f"with {cardinalities[var]} states"
                )
        for var, weights in self._soft.items():
            if var >= len(cardinalities):
                raise ValueError(f"evidence variable {var} does not exist")
            if weights.size != cardinalities[var]:
                raise ValueError(
                    f"soft evidence for variable {var} has {weights.size} "
                    f"weights, variable has {cardinalities[var]} states"
                )
        return dict(self._assignments)

    def soft_as_dict(self) -> Dict[int, np.ndarray]:
        """Copy of the soft findings, ``{variable: weight vector}``."""
        return {var: weights.copy() for var, weights in self._soft.items()}

    @property
    def has_soft(self) -> bool:
        return bool(self._soft)

    def as_dict(self) -> Dict[int, int]:
        return dict(self._assignments)

    def signature(self) -> Tuple:
        """Canonical, hashable fingerprint of the full evidence set.

        Two ``Evidence`` objects describe the same conditioning exactly
        when their signatures are equal (hard assignments and soft weight
        vectors, order-independent) — the key of the engine's
        :class:`~repro.inference.cache.QueryCache`.
        """
        hard = tuple(sorted(self._assignments.items()))
        soft = tuple(
            (var, tuple(map(float, self._soft[var])))
            for var in sorted(self._soft)
        )
        return (hard, soft)

    def __len__(self) -> int:
        return len(self._assignments)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(self._assignments.items())

    def __contains__(self, variable: int) -> bool:
        return variable in self._assignments

    def __repr__(self) -> str:
        return f"Evidence({self._assignments})"


def evidence_delta(
    new_assignments: Mapping[int, int],
    new_soft: Mapping[int, np.ndarray],
    old_assignments: Mapping[int, int],
    old_soft: Mapping[int, np.ndarray],
) -> Tuple[Set[int], bool]:
    """Diff two evidence snapshots into ``(changed_variables, weakening)``.

    A variable is *changed* when its finding differs in any way between the
    snapshots: added, removed, a different hard state, different soft
    weights, or a hard<->soft transition.

    ``weakening`` is True unless every change strictly *adds* a finding on
    a previously unconstrained variable.  Monotone (non-weakening) deltas
    can only multiply further indicator/weight factors into the joint, so
    zero entries in cached tables can never become positive again —
    retraction, overwrite and hard<->soft transitions all can reopen such
    zeros, which restricts how much of a previous propagation is safely
    reusable (see :mod:`repro.inference.incremental`).
    """
    changed: Set[int] = set()
    weakening = False
    for var in set(new_assignments) | set(old_assignments) | set(new_soft) | set(old_soft):
        old_hard = old_assignments.get(var)
        new_hard = new_assignments.get(var)
        old_w = old_soft.get(var)
        new_w = new_soft.get(var)
        if old_hard == new_hard and (
            (old_w is None) == (new_w is None)
            and (old_w is None or np.array_equal(old_w, new_w))
        ):
            continue
        changed.add(var)
        if old_hard is not None or old_w is not None:
            # The variable had a finding before: any modification weakens.
            weakening = True
    return changed, weakening
