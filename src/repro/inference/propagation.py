"""Independent serial reference for evidence propagation.

This implements two-phase propagation (Eq. 1) directly by tree recursion,
*without* the task graph, as a cross-check oracle: the task-graph executors
must produce numerically identical clique potentials.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.jt.junction_tree import JunctionTree
from repro.potential.primitives import divide, extend, marginalize, multiply
from repro.potential.table import PotentialTable


def propagate_reference(
    jt: JunctionTree, evidence: Optional[Mapping[int, int]] = None
) -> Dict[int, PotentialTable]:
    """Full two-phase propagation; returns calibrated clique potentials.

    The input tree's potentials are left untouched.
    """
    potentials = {i: jt.potential(i).copy() for i in range(jt.num_cliques)}
    if evidence:
        potentials = {
            i: table.reduce(evidence) for i, table in potentials.items()
        }
    separators: Dict[Tuple[int, int], PotentialTable] = {}

    def absorb(target: int, source: int, edge: Tuple[int, int]) -> None:
        """Propagate evidence from ``source`` into ``target`` (Eq. 1)."""
        sep_vars = jt.separator(source, target)
        sep_cards = tuple(
            jt.cliques[source].card_of(v) for v in sep_vars
        )
        sep_new = marginalize(potentials[source], sep_vars)
        old = separators.get(edge)
        if old is None:
            old = PotentialTable.ones(sep_vars, sep_cards)
        ratio = divide(sep_new, old.aligned_to(sep_vars))
        separators[edge] = sep_new
        clique = jt.cliques[target]
        extended = extend(ratio, clique.variables, clique.cardinalities)
        potentials[target] = multiply(potentials[target], extended)

    # Collect: children feed parents, bottom-up.
    for node in jt.postorder():
        for child in jt.children[node]:
            absorb(node, child, (node, child))
    # Distribute: parents feed children, top-down.
    for node in jt.preorder():
        for child in jt.children[node]:
            absorb(child, node, (node, child))
    return potentials


def marginal_from_potentials(
    jt: JunctionTree, potentials: Dict[int, PotentialTable], variable: int
):
    """Posterior over ``variable`` from calibrated potentials."""
    host = jt.clique_containing([variable])
    return marginalize(potentials[host], (variable,)).normalize().values
