"""Shafer-Shenoy propagation with lazy message caching.

An alternative to the HUGIN-style two-phase propagation the paper
parallelizes: each directed tree edge carries a *message* computed from
the source clique's prior, its evidence indicators and the messages
flowing into it from its other neighbours.  Beliefs multiply the clique
prior with all incoming messages.

The payoff is **incremental evidence updates**: observing (or retracting)
a variable only invalidates the messages directed *away* from its host
clique; messages flowing toward it stay valid.  Queries then recompute
only the stale part of the tree — the counters expose how much work was
reused, and the tests verify both the numerics (against the HUGIN engine
and brute force) and the savings.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.jt.junction_tree import JunctionTree
from repro.potential.primitives import extend, marginalize, multiply
from repro.potential.table import PotentialTable

Edge = Tuple[int, int]  # (source clique, destination clique)


class ShaferShenoyEngine:
    """Lazy message-passing inference over a junction tree.

    Parameters
    ----------
    jt:
        A junction tree with initialized potentials (the *priors*; the
        engine never mutates them).
    """

    def __init__(self, jt: JunctionTree):
        if len(jt.potentials) != jt.num_cliques:
            raise ValueError(
                "junction tree needs potentials; call initialize_potentials()"
            )
        self.jt = jt
        self._adj = jt.undirected_adjacency()
        self._evidence: Dict[int, int] = {}
        self._soft: Dict[int, np.ndarray] = {}
        self._messages: Dict[Edge, PotentialTable] = {}
        # Instrumentation: how many messages were (re)computed vs served
        # from cache across the engine's lifetime.
        self.messages_computed = 0
        self.messages_reused = 0

    # ------------------------------------------------------------------ #
    # Evidence management
    # ------------------------------------------------------------------ #

    def _host(self, variable: int) -> int:
        return self.jt.clique_containing([variable])

    def _invalidate_from(self, clique: int) -> None:
        """Drop every cached message directed away from ``clique``.

        These are exactly the messages whose upstream side contains
        ``clique``; messages pointing toward it are unaffected.
        """
        # BFS from `clique`: the edge (parent_side -> far_side) along each
        # step is directed away and must be dropped.
        stale: Set[Edge] = set()
        stack = [(clique, None)]
        while stack:
            node, come_from = stack.pop()
            for neighbour in self._adj[node]:
                if neighbour == come_from:
                    continue
                stale.add((node, neighbour))
                stack.append((neighbour, node))
        for edge in stale:
            self._messages.pop(edge, None)

    def observe(self, variable: int, state: int) -> "ShaferShenoyEngine":
        """Set hard evidence ``variable = state`` (overwrites)."""
        host = self._host(variable)
        card = self.jt.cliques[host].card_of(variable)
        if not 0 <= state < card:
            raise ValueError(
                f"state {state} out of range for variable {variable}"
            )
        self._evidence[variable] = state
        self._invalidate_from(host)
        return self

    def observe_soft(
        self, variable: int, weights: Sequence[float]
    ) -> "ShaferShenoyEngine":
        """Attach a likelihood vector to ``variable`` (overwrites)."""
        host = self._host(variable)
        card = self.jt.cliques[host].card_of(variable)
        arr = np.asarray(weights, dtype=np.float64)
        if arr.shape != (card,):
            raise ValueError(
                f"need {card} weights for variable {variable}, got {arr.shape}"
            )
        if np.any(arr < 0) or not np.any(arr > 0):
            raise ValueError("weights must be non-negative, not all zero")
        self._soft[variable] = arr
        self._invalidate_from(host)
        return self

    def retract(self, variable: int) -> "ShaferShenoyEngine":
        """Remove any evidence on ``variable``; unknown variables ignored."""
        if variable in self._evidence or variable in self._soft:
            self._evidence.pop(variable, None)
            self._soft.pop(variable, None)
            self._invalidate_from(self._host(variable))
        return self

    @property
    def evidence(self) -> Dict[int, int]:
        return dict(self._evidence)

    # ------------------------------------------------------------------ #
    # Messages and beliefs
    # ------------------------------------------------------------------ #

    def _local_table(self, clique: int) -> PotentialTable:
        """Clique prior with evidence indicators absorbed."""
        table = self.jt.potential(clique)
        relevant_hard = {
            v: s for v, s in self._evidence.items()
            if v in table.variables and self._host(v) == clique
        }
        if relevant_hard:
            table = table.reduce(relevant_hard)
        for var, weights in self._soft.items():
            if self._host(var) != clique or var not in table.variables:
                continue
            axis = table.variables.index(var)
            shape = [1] * len(table.cardinalities)
            shape[axis] = weights.size
            table = PotentialTable(
                table.variables,
                table.cardinalities,
                table.values * weights.reshape(shape),
            )
        return table

    def _message(self, src: int, dst: int) -> PotentialTable:
        """The message ``src -> dst``, computing stale dependencies first."""
        want = (src, dst)
        if want in self._messages:
            self.messages_reused += 1
            return self._messages[want]
        # Iterative dependency resolution over the (acyclic) message tree:
        # push the target, then any missing upstream messages; a node is
        # computed once all its inputs exist.
        stack: List[Edge] = [want]
        while stack:
            s, d = stack[-1]
            if (s, d) in self._messages:
                stack.pop()
                continue
            missing = [
                (n, s)
                for n in self._adj[s]
                if n != d and (n, s) not in self._messages
            ]
            if missing:
                stack.extend(missing)
                continue
            belief = self._local_table(s)
            for n in self._adj[s]:
                if n == d:
                    continue
                incoming = self._messages[(n, s)]
                belief = multiply(belief, incoming)
            sep = self.jt.separator(s, d)
            self._messages[(s, d)] = marginalize(belief, sep)
            self.messages_computed += 1
            stack.pop()
        return self._messages[want]

    def belief(self, clique: int) -> PotentialTable:
        """Unnormalized joint over ``clique``'s scope given all evidence."""
        if not 0 <= clique < self.jt.num_cliques:
            raise ValueError(f"clique {clique} out of range")
        table = self._local_table(clique)
        for neighbour in self._adj[clique]:
            table = multiply(table, self._message(neighbour, clique))
        return table

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def marginal(self, variable: int) -> np.ndarray:
        """Posterior ``P(variable | evidence)``."""
        host = self._host(variable)
        belief = self.belief(host)
        return marginalize(belief, (variable,)).normalize().values

    def joint_marginal(self, variables: Sequence[int]) -> PotentialTable:
        """Normalized joint over variables co-located in one clique.

        Raises ``KeyError`` if no clique covers the set (out-of-clique
        joints need variable grouping at tree-construction time).
        """
        host = self.jt.clique_containing(variables)
        belief = self.belief(host)
        return marginalize(belief, tuple(variables)).normalize()

    def likelihood(self) -> float:
        """Probability of the current evidence."""
        return self.belief(self.jt.root).total()

    def cache_size(self) -> int:
        """Number of currently valid cached messages (max ``2(N-1)``)."""
        return len(self._messages)

    def __repr__(self) -> str:
        return (
            f"ShaferShenoyEngine(cliques={self.jt.num_cliques}, "
            f"cached={self.cache_size()}, "
            f"computed={self.messages_computed}, "
            f"reused={self.messages_reused})"
        )
