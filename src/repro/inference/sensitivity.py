"""Evidence sensitivity analysis.

Which observation drives the posterior?  :func:`evidence_impact` scores
every finding by the divergence its *removal* causes in a target
posterior (leave-one-out KL), and :func:`finding_strength` scores each
finding in isolation.  Built on the lazy Shafer-Shenoy engine, so the
leave-one-out sweeps reuse messages instead of re-propagating from
scratch.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from repro.inference.shafershenoy import ShaferShenoyEngine
from repro.jt.junction_tree import JunctionTree


def _kl(p: np.ndarray, q: np.ndarray) -> float:
    mask = p > 0
    if np.any(q[mask] == 0):
        return float("inf")
    return float((p[mask] * np.log(p[mask] / q[mask])).sum())


def evidence_impact(
    jt: JunctionTree,
    target: int,
    evidence: Mapping[int, int],
) -> Dict[int, float]:
    """Leave-one-out impact of each finding on ``P(target | evidence)``.

    Returns ``{variable: KL(full posterior || posterior without it)}`` —
    larger means the finding matters more.  The target must be
    unobserved.
    """
    evidence = dict(evidence)
    if target in evidence:
        raise ValueError("target must not be observed")
    engine = ShaferShenoyEngine(jt)
    for var, state in evidence.items():
        engine.observe(var, state)
    full = engine.marginal(target)
    impact: Dict[int, float] = {}
    for var in evidence:
        engine.retract(var)
        reduced = engine.marginal(target)
        impact[var] = _kl(full, reduced)
        engine.observe(var, evidence[var])
    return impact


def finding_strength(
    jt: JunctionTree,
    target: int,
    evidence: Mapping[int, int],
) -> Dict[int, float]:
    """Each finding's solo effect: KL(posterior with only it || prior)."""
    evidence = dict(evidence)
    if target in evidence:
        raise ValueError("target must not be observed")
    engine = ShaferShenoyEngine(jt)
    prior = engine.marginal(target)
    strength: Dict[int, float] = {}
    for var, state in evidence.items():
        engine.observe(var, state)
        strength[var] = _kl(engine.marginal(target), prior)
        engine.retract(var)
    return strength


def rank_findings(
    jt: JunctionTree,
    target: int,
    evidence: Mapping[int, int],
) -> Sequence[Tuple[int, float]]:
    """Findings sorted by leave-one-out impact, strongest first."""
    impact = evidence_impact(jt, target, evidence)
    return sorted(impact.items(), key=lambda kv: kv[1], reverse=True)


def _entropy(p: np.ndarray) -> float:
    mask = p > 0
    return float(-(p[mask] * np.log(p[mask])).sum())


def expected_information_gain(
    jt: JunctionTree,
    target: int,
    candidate: int,
    evidence: Mapping[int, int] = None,
) -> float:
    """Expected entropy reduction of ``target`` from observing ``candidate``.

    ``I(candidate; target | evidence) = H(T|e) - E_s[H(T | c=s, e)]``,
    with the expectation under the current predictive distribution of the
    candidate.  This is the value-of-information score for choosing the
    next observation; it equals the conditional mutual information, so it
    is non-negative and zero iff the candidate is irrelevant.
    """
    evidence = dict(evidence or {})
    if target == candidate:
        raise ValueError("candidate must differ from the target")
    if target in evidence or candidate in evidence:
        raise ValueError("target and candidate must be unobserved")
    engine = ShaferShenoyEngine(jt)
    for var, state in evidence.items():
        engine.observe(var, state)
    prior_target = engine.marginal(target)
    predictive = engine.marginal(candidate)
    gain = _entropy(prior_target)
    for state, weight in enumerate(predictive):
        if weight == 0:
            continue
        engine.observe(candidate, state)
        gain -= weight * _entropy(engine.marginal(target))
        engine.retract(candidate)
    return max(gain, 0.0)


def best_next_observation(
    jt: JunctionTree,
    target: int,
    candidates: Sequence[int],
    evidence: Mapping[int, int] = None,
) -> Sequence[Tuple[int, float]]:
    """Candidates ranked by expected information gain, best first."""
    scored = [
        (c, expected_information_gain(jt, target, c, evidence))
        for c in candidates
    ]
    return sorted(scored, key=lambda kv: kv[1], reverse=True)
