"""Variable elimination: an independent exact-inference algorithm.

Computes marginals directly from the Bayesian network's factors without
building a junction tree, so it shares no code path with the propagation
engines — making it a genuinely independent cross-validation oracle (and a
practical tool for one-off queries over *sets* of variables that no single
clique covers).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.bn.network import BayesianNetwork
from repro.potential.primitives import marginalize
from repro.potential.table import PotentialTable, common_scope


def _multiply_all(factors: Sequence[PotentialTable]) -> PotentialTable:
    """Product of factors over their union scope."""
    variables, cards = common_scope(factors)
    from repro.potential.primitives import extend

    values = np.ones(cards if cards else ())
    for factor in factors:
        values = values * extend(factor, variables, cards).values
    return PotentialTable(variables, cards, values)


def _elimination_order(
    factors: Sequence[PotentialTable], keep: Iterable[int]
) -> List[int]:
    """Greedy min-size order over the variables not in ``keep``."""
    keep = set(keep)
    # Interaction graph: variables sharing a factor are neighbours.
    neighbours: Dict[int, set] = {}
    cards: Dict[int, int] = {}
    for factor in factors:
        for v, c in zip(factor.variables, factor.cardinalities):
            neighbours.setdefault(v, set()).update(
                u for u in factor.variables if u != v
            )
            cards[v] = c
    order: List[int] = []
    remaining = set(neighbours) - keep
    while remaining:

        def cost(v: int) -> float:
            size = cards[v]
            for u in neighbours[v]:
                if u in remaining or u in keep:
                    size *= cards[u]
            return size

        v = min(remaining, key=lambda u: (cost(u), u))
        order.append(v)
        live = {u for u in neighbours[v] if u != v}
        for a in live:
            neighbours[a].discard(v)
            neighbours[a].update(u for u in live if u != a)
        remaining.discard(v)
    return order


def ve_query(
    bn: BayesianNetwork,
    targets: Sequence[int],
    evidence: Optional[Mapping[int, int]] = None,
) -> PotentialTable:
    """Normalized joint posterior over ``targets`` given ``evidence``.

    Works for any target set (no clique-coverage restriction).  Targets
    must not overlap the evidence.
    """
    targets = [int(t) for t in targets]
    if not targets:
        raise ValueError("need at least one target variable")
    evidence = dict(evidence or {})
    overlap = set(targets) & set(evidence)
    if overlap:
        raise ValueError(f"targets {sorted(overlap)} are observed")
    if not bn.has_all_cpts():
        raise ValueError("all CPTs must be set")
    for t in targets:
        if not 0 <= t < bn.num_variables:
            raise ValueError(f"target {t} out of range")

    factors: List[PotentialTable] = [
        bn.cpt(v).reduce(evidence) if evidence else bn.cpt(v)
        for v in range(bn.num_variables)
    ]
    # Sum out evidence variables immediately (they are point masses) so
    # factor scopes shrink before elimination proper.
    order = _elimination_order(factors, keep=targets)
    for v in order:
        involved = [f for f in factors if v in f.variables]
        if not involved:
            continue
        rest = [f for f in factors if v not in f.variables]
        product = _multiply_all(involved)
        keep_vars = tuple(u for u in product.variables if u != v)
        factors = rest + [marginalize(product, keep_vars)]
    # After elimination every remaining factor's scope is within the
    # targets (plus scalar constants from summed-out components).
    result = _multiply_all(factors)
    result = marginalize(result, tuple(targets))
    return result.normalize()


def ve_marginal(
    bn: BayesianNetwork,
    target: int,
    evidence: Optional[Mapping[int, int]] = None,
) -> np.ndarray:
    """Posterior ``P(target | evidence)`` as a vector."""
    return ve_query(bn, [target], evidence).values
