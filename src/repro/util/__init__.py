"""Shared utilities: validation helpers, deterministic RNG, small graph helpers."""

from repro.util.rng import make_rng
from repro.util.validation import check_positive, check_probability_vector

__all__ = ["make_rng", "check_positive", "check_probability_vector"]
