"""Small argument-validation helpers used across the library."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")


def check_probability_vector(values: Sequence[float], atol: float = 1e-8) -> None:
    """Raise ``ValueError`` unless ``values`` is non-negative and sums to 1."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("probability vector must be non-empty")
    if np.any(arr < -atol):
        raise ValueError("probability vector has negative entries")
    total = float(arr.sum())
    if not np.isclose(total, 1.0, atol=atol):
        raise ValueError(f"probability vector sums to {total}, expected 1.0")
