"""Deterministic random number generation helpers.

Every stochastic generator in the library accepts either an integer seed or a
:class:`numpy.random.Generator`.  Routing both through :func:`make_rng` keeps
experiments reproducible while letting callers share a generator across calls.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (fresh entropy), an integer, or an existing
    generator (returned unchanged so that state is shared with the caller).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list:
    """Derive ``count`` independent generators from a single seed.

    Used by parallel workload generators so each stream is reproducible
    regardless of evaluation order.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = np.random.SeedSequence(seed if isinstance(seed, int) else None)
    return [np.random.default_rng(s) for s in root.spawn(count)]
