"""Scheduling policies simulated by the multicore model.

Every policy consumes a :class:`~repro.tasks.task.TaskGraph` and produces a
:class:`~repro.simcore.result.SimResult`; speedups are computed against the
policy's own single-core run (as the paper does).

* :class:`SerialPolicy` — one core, topological order (the ``P = 1`` anchor).
* :class:`CollaborativePolicy` — the proposed method: greedy work-sharing
  list scheduling over the partition-expanded DAG, with per-task
  Allocate/Fetch overhead and lock contention.
* :class:`LevelParallelPolicy` — the OpenMP baseline: level-synchronous
  parallel-for, one barrier per level, no task partitioning, so a level's
  largest potential table stalls all other cores.
* :class:`DataParallelPolicy` — the data-parallel baseline: tasks in serial
  order, each primitive forked across all cores (a fork/join per primitive).
* :class:`CentralizedPolicy` — the PNL-like baseline of Fig. 6: a central
  scheduler dispatches tasks serially with a latency that grows with the
  number of processors.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

from repro.simcore.profiles import PlatformProfile
from repro.simcore.result import SimResult
from repro.simcore.trace import Trace
from repro.simcore.simgraph import (
    DEFAULT_MAX_CHUNKS,
    SimGraph,
    build_sim_graph,
)
from repro.tasks.task import TaskGraph

# Default δ of the Partition module, in potential-table entries.  Chosen so
# the paper's width-20 binary cliques (2^20-entry tables) are split while
# separator-sized tables are not.
DEFAULT_PARTITION_THRESHOLD = 1 << 19


def _greedy_schedule(
    sim: SimGraph,
    profile: PlatformProfile,
    num_cores: int,
    per_task_overhead: float,
    dispatch_latency: float = 0.0,
    dispatch_fn=None,
    worker_cores: Optional[int] = None,
    trace: "Optional[Trace]" = None,
    fault_plan=None,
) -> SimResult:
    """Event-driven greedy list scheduling.

    Tasks become ready when all predecessors finish; a ready task goes to
    the earliest-available core (the simulator's equivalent of allocating to
    the least-loaded local ready list).  ``per_task_overhead`` seconds of
    scheduling bookkeeping precede every task.  With ``dispatch_latency``
    > 0, ready tasks additionally pass through a serial dispatcher before
    they may start (the centralized baseline's bottleneck).

    ``fault_plan`` hooks the simulator's fault model
    (:class:`~repro.sched.faults.FaultPlan`): ``sim_kill_core`` removes a
    core from service before the Nth dispatch (its remaining work
    reschedules onto the survivors — the model of crash-and-re-execute
    recovery), and ``sim_delay_task`` stretches one node's duration (the
    model of a straggling/hung task under a deadline).  The simulator
    never kills its last core.
    """
    workers = worker_cores if worker_cores is not None else num_cores
    workers = max(workers, 1)
    compute = [0.0] * workers
    sched = [0.0] * workers
    core_free = [0.0] * workers
    indeg = sim.indegrees()
    finish = [0.0] * sim.num_nodes
    dispatcher_free = 0.0
    use_dispatcher = dispatch_latency > 0.0 or dispatch_fn is not None
    dead: set = set()
    dispatch_index = 0
    cores_lost = 0
    faults_injected = 0

    ready: List = []
    counter = 0
    for nid in sim.roots():
        heapq.heappush(ready, (0.0, counter, nid))
        counter += 1

    done = 0
    makespan = 0.0
    while ready:
        t_ready, _, nid = heapq.heappop(ready)
        if fault_plan is not None:
            victim = fault_plan.take_sim_kill(dispatch_index)
            if victim is not None:
                victim %= workers
                if victim not in dead and len(dead) < workers - 1:
                    dead.add(victim)
                    cores_lost += 1
                    faults_injected += 1
        dispatch_index += 1
        if use_dispatcher:
            latency = dispatch_latency
            if dispatch_fn is not None:
                latency = dispatch_fn(nid)
            dispatcher_free = max(dispatcher_free, t_ready) + latency
            t_ready = dispatcher_free
        alive = [c for c in range(workers) if c not in dead]
        core = min(alive, key=lambda c: (max(core_free[c], t_ready), c))
        start = max(core_free[core], t_ready)
        duration = profile.duration(sim.weights[nid], num_cores)
        if fault_plan is not None:
            extra = fault_plan.take_sim_delay(nid)
            if extra:
                duration += extra
                faults_injected += 1
        end = start + per_task_overhead + duration
        core_free[core] = end
        compute[core] += duration
        sched[core] += per_task_overhead
        finish[nid] = end
        if trace is not None:
            trace.add(nid, core, start, end)
        makespan = max(makespan, end)
        done += 1
        for s in sim.succs[nid]:
            indeg[s] -= 1
            if indeg[s] == 0:
                ready_time = max(finish[d] for d in sim.deps[s])
                heapq.heappush(ready, (ready_time, counter, s))
                counter += 1
    if done != sim.num_nodes:
        raise RuntimeError("simulation deadlocked: dependency cycle")
    return SimResult(
        policy="",
        platform=profile.name,
        num_cores=num_cores,
        makespan=makespan,
        compute_time=compute,
        sched_time=sched,
        tasks_executed=done,
        cores_lost=cores_lost,
        faults_injected=faults_injected,
    )


class SerialPolicy:
    """Single-core execution with no scheduling overhead (the anchor)."""

    name = "serial"

    def simulate(
        self, graph: TaskGraph, profile: PlatformProfile, num_cores: int = 1
    ) -> SimResult:
        sim = build_sim_graph(graph)
        makespan = sum(profile.duration(w, 1) for w in sim.weights)
        return SimResult(
            policy=self.name,
            platform=profile.name,
            num_cores=1,
            makespan=makespan,
            compute_time=[makespan],
            sched_time=[0.0],
            tasks_executed=sim.num_nodes,
        )


class CollaborativePolicy:
    """The proposed collaborative scheduler (Algorithm 2) under the model.

    ``partition_threshold=None`` disables the Partition module, as in the
    Fig. 5 rerooting experiments.
    """

    name = "collaborative"

    def __init__(
        self,
        partition_threshold: Optional[int] = DEFAULT_PARTITION_THRESHOLD,
        max_chunks: int = DEFAULT_MAX_CHUNKS,
    ):
        self.partition_threshold = partition_threshold
        self.max_chunks = max_chunks

    def simulate(
        self,
        graph: TaskGraph,
        profile: PlatformProfile,
        num_cores: int,
        record_trace: bool = False,
        fault_plan=None,
    ) -> SimResult:
        sim = build_sim_graph(graph, self.partition_threshold, self.max_chunks)
        overhead = profile.task_sched_overhead(num_cores)
        trace = Trace(num_cores) if record_trace else None
        # The global-task-list lock is a serialized resource: every task's
        # Allocate pass holds it for `lock_cost` seconds.  Irrelevant for
        # coarse tasks, but it floors the makespan of fine-grained graphs
        # on many cores (the paper's Section 8 concern).
        result = _greedy_schedule(
            sim,
            profile,
            num_cores,
            overhead,
            dispatch_latency=profile.lock_cost if num_cores > 1 else 0.0,
            trace=trace,
            fault_plan=fault_plan,
        )
        result.policy = self.name
        if record_trace:
            trace.check_no_overlap()
            result.trace = trace
            result.sim_graph = sim
        return result


class WorkStealingPolicy(CollaborativePolicy):
    """Simulated work-stealing variant of the collaborative scheduler.

    The paper's Section 8 worries that shared-lock contention will grow
    with core count.  Work stealing keeps ready tasks in per-thread deques
    and only takes a shared lock on the rare steal, so the per-task
    overhead loses its contention term.  The matching real-thread
    implementation is :class:`repro.sched.workstealing.WorkStealingExecutor`.
    """

    name = "work-stealing"

    def simulate(
        self,
        graph: TaskGraph,
        profile: PlatformProfile,
        num_cores: int,
        record_trace: bool = False,
        fault_plan=None,
    ) -> SimResult:
        sim = build_sim_graph(graph, self.partition_threshold, self.max_chunks)
        # Own-deque push/pop needs no contended lock; only the (short)
        # dependency-counter update remains a shared serialized section.
        overhead = profile.sched_overhead + profile.lock_cost
        trace = Trace(num_cores) if record_trace else None
        result = _greedy_schedule(
            sim,
            profile,
            num_cores,
            overhead,
            dispatch_latency=(
                profile.lock_cost * 0.25 if num_cores > 1 else 0.0
            ),
            trace=trace,
            fault_plan=fault_plan,
        )
        result.policy = self.name
        if record_trace:
            result.trace = trace
            result.sim_graph = sim
        return result


class LevelParallelPolicy:
    """OpenMP-style level-synchronous parallel-for baseline.

    Models an OpenMP port of the sequential code: the unit of parallel work
    is one *clique update* (the whole four-primitive pipeline per incoming
    message), distributed over threads with a parallel-for per dependency
    level and a barrier in between.  There is no task partitioning, so a
    level's heaviest clique bounds the level's time, and the narrow levels
    near the root run nearly serially — the two effects that keep this
    baseline around half the collaborative scheduler's speedup.
    """

    name = "openmp-level"

    def simulate(
        self, graph: TaskGraph, profile: PlatformProfile, num_cores: int
    ) -> SimResult:
        units, unit_weights, unit_deps = self._clique_units(graph)
        p = num_cores
        compute = [0.0] * p
        sched = [0.0] * p
        makespan = 0.0
        region_overhead = profile.fork_join_cost * max(p - 1, 0)
        barrier = profile.barrier_cost * max(p - 1, 0)
        for level in self._levels(unit_deps):
            # LPT greedy over clique updates: an optimistic model of
            # OpenMP dynamic scheduling of the per-level loop.
            loads = [0.0] * p
            for uid in sorted(level, key=lambda u: unit_weights[u], reverse=True):
                core = min(range(p), key=lambda c: loads[c])
                duration = profile.duration(unit_weights[uid], p)
                loads[core] += duration
                compute[core] += duration
            makespan += max(loads) + region_overhead + barrier
            for core in range(p):
                sched[core] += region_overhead + barrier
        return SimResult(
            policy=self.name,
            platform=profile.name,
            num_cores=p,
            makespan=makespan,
            compute_time=compute,
            sched_time=sched,
            tasks_executed=graph.num_tasks,
        )

    @staticmethod
    def _clique_units(graph: TaskGraph):
        """Aggregate tasks into (phase, clique) units with induced deps."""
        unit_ids = {}
        unit_weights: List[float] = []
        task_unit: List[int] = []
        for task in graph.tasks:
            key = (task.phase, task.clique)
            if key not in unit_ids:
                unit_ids[key] = len(unit_weights)
                unit_weights.append(0.0)
            uid = unit_ids[key]
            task_unit.append(uid)
            unit_weights[uid] += task.weight
        unit_deps: List[set] = [set() for _ in unit_weights]
        for task in graph.tasks:
            uid = task_unit[task.tid]
            for d in graph.deps[task.tid]:
                du = task_unit[d]
                if du != uid:
                    unit_deps[uid].add(du)
        return unit_ids, unit_weights, unit_deps

    @staticmethod
    def _levels(unit_deps: List[set]) -> List[List[int]]:
        n = len(unit_deps)
        succs: List[List[int]] = [[] for _ in range(n)]
        indeg = [0] * n
        for uid, deps in enumerate(unit_deps):
            indeg[uid] = len(deps)
            for d in deps:
                succs[d].append(uid)
        depth = [0] * n
        ready = [u for u in range(n) if indeg[u] == 0]
        order = []
        while ready:
            u = ready.pop()
            order.append(u)
            for s in succs[u]:
                depth[s] = max(depth[s], depth[u] + 1)
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(s)
        if len(order) != n:
            raise RuntimeError("clique-unit graph contains a cycle")
        if n == 0:
            return []
        buckets: List[List[int]] = [[] for _ in range(max(depth) + 1)]
        for u, d in enumerate(depth):
            buckets[d].append(u)
        return buckets


class _PerPrimitivePolicy:
    """Shared machinery for the two per-primitive baselines.

    Tasks run in serial topological order; each primitive is chunked across
    all cores, paying a parallel-region overhead per primitive and the
    same-table streaming cap (all cores scan one potential table at once,
    saturating the shared memory controllers — see
    :class:`~repro.simcore.profiles.PlatformProfile`).
    """

    name = "per-primitive"
    static_scheduling = False
    # Spawning a worker for fewer entries than this costs more than it
    # saves; both baselines bound their thread count accordingly.
    min_chunk_entries = 4096

    def _region_overhead(self, profile: PlatformProfile, pieces: int) -> float:
        raise NotImplementedError

    def simulate(
        self, graph: TaskGraph, profile: PlatformProfile, num_cores: int
    ) -> SimResult:
        p = num_cores
        compute = [0.0] * p
        sched = [0.0] * p
        makespan = 0.0
        for task in graph.tasks:
            by_size = -(-max(task.partition_size, 1) // self.min_chunk_entries)
            pieces = max(1, min(p, by_size))
            span = profile.streamed_duration(
                task.weight, pieces, p, static=self.static_scheduling
            )
            region_overhead = self._region_overhead(profile, pieces)
            for core in range(pieces):
                compute[core] += span
            for core in range(p):
                sched[core] += region_overhead / max(p, 1)
            makespan += span + region_overhead
        # Serial task order: the makespan is the sum over primitives.
        return SimResult(
            policy=self.name,
            platform=profile.name,
            num_cores=p,
            makespan=makespan,
            compute_time=compute,
            sched_time=sched,
            tasks_executed=graph.num_tasks,
        )


class DataParallelPolicy(_PerPrimitivePolicy):
    """"Data parallel method": explicit threads spawned per primitive.

    Pays a thread fork/join per primitive but schedules chunks dynamically
    (full ``stream_cap`` efficiency).
    """

    name = "data-parallel"
    static_scheduling = False

    def _region_overhead(self, profile: PlatformProfile, pieces: int) -> float:
        return profile.fork_join_cost * max(pieces - 1, 0)


class OpenMPPolicy(_PerPrimitivePolicy):
    """OpenMP pragmas on the sequential code's primitive loops.

    Cheaper region entry than explicit thread spawning (persistent thread
    pool), but static loop scheduling wastes part of the effective
    same-table streams (``omp_efficiency``).
    """

    name = "openmp"
    static_scheduling = True

    def _region_overhead(self, profile: PlatformProfile, pieces: int) -> float:
        return profile.barrier_cost * max(pieces - 1, 0)


class CentralizedPolicy:
    """PNL-like centralized scheduler whose dispatch cost grows with P.

    Models the behaviour the paper observes in Fig. 6: beyond ~4 processors
    the serial dispatcher (coordination/message cost ``dispatch_base +
    dispatch_per_core * P``) dominates and execution time *increases*.
    """

    name = "centralized-pnl"

    def simulate(
        self, graph: TaskGraph, profile: PlatformProfile, num_cores: int
    ) -> SimResult:
        sim = build_sim_graph(graph)
        if num_cores <= 1:
            makespan = sum(
                profile.duration(w, 1)
                + profile.dispatch_latency(1, w / profile.flops_per_second)
                for w in sim.weights
            )
            return SimResult(
                policy=self.name,
                platform=profile.name,
                num_cores=1,
                makespan=makespan,
                compute_time=[makespan],
                sched_time=[0.0],
                tasks_executed=sim.num_nodes,
            )

        def dispatch(nid: int) -> float:
            serial = sim.weights[nid] / profile.flops_per_second
            return profile.dispatch_latency(num_cores, serial)

        result = _greedy_schedule(
            sim,
            profile,
            num_cores,
            per_task_overhead=0.0,
            dispatch_fn=dispatch,
        )
        result.policy = self.name
        result.num_cores = num_cores
        return result
