"""Priority-driven list scheduling (critical-path-first) for the simulator.

The collaborative scheduler's Fetch module takes the head of the local
ready list (FIFO).  A classic alternative prioritizes tasks by *upward
rank* — the heaviest dependency chain from the task to a sink — so the
critical path drains first.  :class:`CriticalPathPolicy` simulates that
variant; the ablation benchmark compares it against the paper's FIFO.

Unlike :func:`repro.simcore.policies._greedy_schedule` (which serves ready
tasks in ready-time order), the scheduler here re-selects the
highest-priority ready task whenever a core frees up, processing all
completions up to that moment first.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

from repro.simcore.policies import DEFAULT_PARTITION_THRESHOLD
from repro.simcore.profiles import PlatformProfile
from repro.simcore.result import SimResult
from repro.simcore.simgraph import (
    DEFAULT_MAX_CHUNKS,
    SimGraph,
    build_sim_graph,
)
from repro.tasks.task import TaskGraph

PRIORITIES = ("upward-rank", "weight", "fifo")


def upward_ranks(sim: SimGraph) -> List[float]:
    """Heaviest chain weight from each node to a sink, inclusive."""
    rank = [0.0] * sim.num_nodes
    for nid in reversed(sim.topological_order()):
        best_succ = max((rank[s] for s in sim.succs[nid]), default=0.0)
        rank[nid] = sim.weights[nid] + best_succ
    return rank


def _priority_schedule(
    sim: SimGraph,
    profile: PlatformProfile,
    num_cores: int,
    per_task_overhead: float,
    priority: List[float],
) -> SimResult:
    """Core-idle-driven list scheduling with an explicit priority vector."""
    compute = [0.0] * num_cores
    sched = [0.0] * num_cores
    indeg = sim.indegrees()
    finish = [0.0] * sim.num_nodes

    cores: List = [(0.0, c) for c in range(num_cores)]
    heapq.heapify(cores)
    completions: List = []  # (time, seq, node)
    ready: List = []  # (-priority, seq, node)
    seq = 0
    for nid in sim.roots():
        heapq.heappush(ready, (-priority[nid], seq, nid))
        seq += 1

    done = 0
    makespan = 0.0

    def process_completion(nid: int) -> None:
        nonlocal seq
        for s in sim.succs[nid]:
            indeg[s] -= 1
            if indeg[s] == 0:
                heapq.heappush(ready, (-priority[s], seq, s))
                seq += 1

    while done < sim.num_nodes:
        if not ready:
            # Wait for the next completion to release work.
            t, _, nid = heapq.heappop(completions)
            process_completion(nid)
            continue
        t_core, core = cores[0]
        # Completions up to the moment the core starts may surface
        # higher-priority tasks; fold them in first.
        while completions and completions[0][0] <= t_core:
            _, _, nid = heapq.heappop(completions)
            process_completion(nid)
        _, _, nid = heapq.heappop(ready)
        heapq.heappop(cores)
        ready_time = max(
            (finish[d] for d in sim.deps[nid]), default=0.0
        )
        start = max(t_core, ready_time)
        duration = profile.duration(sim.weights[nid], num_cores)
        end = start + per_task_overhead + duration
        compute[core] += duration
        sched[core] += per_task_overhead
        finish[nid] = end
        makespan = max(makespan, end)
        heapq.heappush(cores, (end, core))
        heapq.heappush(completions, (end, seq, nid))
        seq += 1
        done += 1
    return SimResult(
        policy="",
        platform=profile.name,
        num_cores=num_cores,
        makespan=makespan,
        compute_time=compute,
        sched_time=sched,
        tasks_executed=sim.num_nodes,
    )


class CriticalPathPolicy:
    """Collaborative-style scheduling with priority-ordered fetching."""

    name = "critical-path"

    def __init__(
        self,
        priority: str = "upward-rank",
        partition_threshold: Optional[int] = DEFAULT_PARTITION_THRESHOLD,
        max_chunks: int = DEFAULT_MAX_CHUNKS,
    ):
        if priority not in PRIORITIES:
            raise ValueError(f"priority must be one of {PRIORITIES}")
        self.priority = priority
        self.partition_threshold = partition_threshold
        self.max_chunks = max_chunks

    def simulate(
        self, graph: TaskGraph, profile: PlatformProfile, num_cores: int
    ) -> SimResult:
        sim = build_sim_graph(graph, self.partition_threshold, self.max_chunks)
        if self.priority == "upward-rank":
            prio = upward_ranks(sim)
        elif self.priority == "weight":
            prio = list(sim.weights)
        else:
            prio = [0.0] * sim.num_nodes
        overhead = profile.task_sched_overhead(num_cores)
        result = _priority_schedule(sim, profile, num_cores, overhead, prio)
        result.policy = f"{self.name}({self.priority})"
        return result
