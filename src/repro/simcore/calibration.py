"""Closed-form helpers for fitting the cost-model constants.

The platform profiles were calibrated to the paper's reported end points
(7.4x / 7.1x collaborative speedup at 8 cores, baselines near 3.2-3.9x,
sub-0.9 % scheduling overhead).  These helpers invert the model's simple
formulas so a user targeting different hardware can derive constants
instead of hand-searching:

* ideal speedup under memory pressure:
  ``S(P) = P / (1 + memory_factor * (P - 1))``,
* per-primitive baseline speedup with a streaming cap:
  ``S = t / (t / cap + region_overhead)`` for a task of duration ``t``.
"""

from __future__ import annotations

from repro.util.validation import check_positive


def memory_factor_for_speedup(target_speedup: float, cores: int) -> float:
    """The ``memory_factor`` making the pressure-only model hit a target.

    Solves ``cores / (1 + f * (cores - 1)) = target`` for ``f``.  The
    target must lie in ``(1, cores]``; a target equal to ``cores`` gives 0.
    """
    check_positive("target_speedup", target_speedup)
    if cores < 2:
        raise ValueError("cores must be >= 2")
    if not 1.0 < target_speedup <= cores:
        raise ValueError(
            f"target speedup must be in (1, {cores}], got {target_speedup}"
        )
    return (cores / target_speedup - 1.0) / (cores - 1)


def expected_speedup(memory_factor: float, cores: int) -> float:
    """Forward model: pressure-limited speedup at ``cores``."""
    if memory_factor < 0:
        raise ValueError("memory_factor must be non-negative")
    if cores < 1:
        raise ValueError("cores must be >= 1")
    return cores / (1.0 + memory_factor * (cores - 1))


def stream_cap_for_baseline(
    target_speedup: float,
    task_seconds: float,
    region_overhead: float,
) -> float:
    """The ``stream_cap`` putting a per-primitive baseline at a target.

    Solves ``t / (t / cap + overhead) = target`` for ``cap`` given a
    representative task duration.  The target must be achievable: the
    overhead alone must not exceed the implied budget.
    """
    check_positive("target_speedup", target_speedup)
    check_positive("task_seconds", task_seconds)
    if region_overhead < 0:
        raise ValueError("region_overhead must be non-negative")
    budget = task_seconds / target_speedup - region_overhead
    if budget <= 0:
        raise ValueError(
            "target is unreachable: the region overhead alone exceeds "
            "the per-task time budget"
        )
    return task_seconds / budget


def baseline_speedup(
    stream_cap: float, task_seconds: float, region_overhead: float
) -> float:
    """Forward model: per-primitive baseline speedup for one task size."""
    check_positive("stream_cap", stream_cap)
    check_positive("task_seconds", task_seconds)
    return task_seconds / (task_seconds / stream_cap + region_overhead)
