"""Per-core execution traces of simulated schedules.

A :class:`Trace` is the Gantt chart of one simulation: for every executed
node it records which core ran it and when.  Used by the load-balance
experiments and by tests that verify schedule validity (no core overlap,
dependencies respected).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class TraceEvent:
    """One task execution: ``node`` ran on ``core`` during ``[start, end)``."""

    node: int
    core: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Trace:
    """Chronological record of a simulated schedule."""

    num_cores: int
    events: List[TraceEvent] = field(default_factory=list)

    def add(self, node: int, core: int, start: float, end: float) -> None:
        if end < start:
            raise ValueError(f"event for node {node} ends before it starts")
        if not 0 <= core < self.num_cores:
            raise ValueError(f"core {core} out of range")
        self.events.append(TraceEvent(node, core, start, end))

    def per_core(self) -> Dict[int, List[TraceEvent]]:
        """Events grouped by core, each list sorted by start time."""
        buckets: Dict[int, List[TraceEvent]] = {
            c: [] for c in range(self.num_cores)
        }
        for event in self.events:
            buckets[event.core].append(event)
        for events in buckets.values():
            events.sort(key=lambda e: e.start)
        return buckets

    def makespan(self) -> float:
        return max((e.end for e in self.events), default=0.0)

    def busy_time(self, core: int) -> float:
        return sum(e.duration for e in self.events if e.core == core)

    def idle_time(self, core: int) -> float:
        return self.makespan() - self.busy_time(core)

    def check_no_overlap(self) -> None:
        """Raise ``ValueError`` if any core runs two tasks at once."""
        for core, events in self.per_core().items():
            for a, b in zip(events, events[1:]):
                if b.start < a.end - 1e-12:
                    raise ValueError(
                        f"core {core}: node {b.node} starts at {b.start} "
                        f"before node {a.node} ends at {a.end}"
                    )

    def check_dependencies(self, deps: List[List[int]]) -> None:
        """Raise ``ValueError`` if a node started before a dependency ended.

        ``deps`` indexes by node id; nodes absent from the trace are
        ignored (e.g. when tracing a sub-schedule).
        """
        finish: Dict[int, float] = {}
        start: Dict[int, float] = {}
        for event in self.events:
            finish[event.node] = event.end
            start[event.node] = event.start
        for node, node_deps in enumerate(deps):
            if node not in start:
                continue
            for d in node_deps:
                if d in finish and start[node] < finish[d] - 1e-12:
                    raise ValueError(
                        f"node {node} started at {start[node]} before "
                        f"dependency {d} finished at {finish[d]}"
                    )

    def gantt_rows(self, width: int = 72) -> List[str]:
        """ASCII Gantt rendering, one row per core."""
        span = self.makespan()
        if span == 0:
            return ["(empty trace)"]
        rows = []
        for core, events in self.per_core().items():
            cells = [" "] * width
            for event in events:
                lo = int(event.start / span * (width - 1))
                hi = max(int(event.end / span * (width - 1)), lo)
                for i in range(lo, hi + 1):
                    cells[i] = "#"
            rows.append(f"core {core}: |{''.join(cells)}|")
        return rows
