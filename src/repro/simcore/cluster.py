"""Distributed-memory (cluster) evidence propagation baseline.

The paper's related work (Xia & Prasanna, IPDPS 2008) propagates evidence
on message-passing clusters by decomposing the junction tree into per-node
subtrees; the PACT 2009 paper argues shared-memory multicores avoid that
communication cost.  This module makes the comparison concrete:

* :func:`partition_tree` — contiguous-subtree decomposition balancing the
  Eq. 2 clique costs across nodes,
* :class:`ClusterProfile` — per-node compute plus network latency and
  bandwidth,
* :class:`ClusterPolicy` — greedy scheduling with *affinity*: every task
  runs on its clique's node, and any dependency crossing a partition
  boundary pays a separator-message delay.

The expected result (and the shape the benchmarks assert): for the paper's
fine-grained task graphs, a cluster of N single-core nodes scales worse
than N shared-memory cores — communication eats the structural
parallelism — which is exactly the paper's motivation for the multicore
collaborative scheduler.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional

from repro.jt.junction_tree import JunctionTree
from repro.jt.rerooting import all_clique_costs
from repro.simcore.result import SimResult
from repro.tasks.task import TaskGraph


@dataclass(frozen=True)
class ClusterProfile:
    """Cost constants for a message-passing cluster.

    ``flops_per_second`` is per node; a separator message of ``n`` entries
    costs ``net_latency + n * 8 / net_bandwidth_bytes`` seconds.
    """

    name: str
    flops_per_second: float
    net_latency: float
    net_bandwidth_bytes: float

    def compute_seconds(self, flops: float) -> float:
        return flops / self.flops_per_second

    def message_seconds(self, entries: int) -> float:
        return self.net_latency + entries * 8.0 / self.net_bandwidth_bytes


# Gigabit-Ethernet-era cluster of ~2 GHz nodes, matching the x86 profiles.
GIGE_CLUSTER = ClusterProfile(
    name="GigE cluster (2.0 GHz nodes)",
    flops_per_second=2.0e9,
    net_latency=50.0e-6,
    net_bandwidth_bytes=125.0e6,  # 1 Gb/s
)


def partition_tree(jt: JunctionTree, parts: int) -> List[int]:
    """Assign each clique to one of ``parts`` nodes, subtrees kept contiguous.

    A preorder sweep opens a new part whenever the running cost exceeds the
    per-part budget (total cost / parts); contiguity keeps most tree edges
    internal, minimizing messages — the junction tree decomposition idea.
    """
    if parts < 1:
        raise ValueError("parts must be >= 1")
    costs = all_clique_costs(jt)
    budget = sum(costs) / parts
    assignment = [0] * jt.num_cliques
    current_part = 0
    current_load = 0.0
    for node in jt.preorder():
        if current_load >= budget and current_part < parts - 1:
            current_part += 1
            current_load = 0.0
        assignment[node] = current_part
        current_load += costs[node]
    return assignment


def count_cut_edges(jt: JunctionTree, assignment: List[int]) -> int:
    """Tree edges whose endpoints live on different nodes."""
    cut = 0
    for child in range(jt.num_cliques):
        parent = jt.parent[child]
        if parent is not None and assignment[child] != assignment[parent]:
            cut += 1
    return cut


class ClusterPolicy:
    """Affinity-scheduled propagation over a partitioned junction tree."""

    name = "cluster"

    def __init__(self, profile: ClusterProfile = GIGE_CLUSTER):
        self.profile = profile

    def simulate(
        self,
        graph: TaskGraph,
        jt: JunctionTree,
        num_nodes: int,
        assignment: Optional[List[int]] = None,
    ) -> SimResult:
        """Simulate propagation on ``num_nodes`` single-core nodes.

        Unlike the shared-memory policies this needs the junction tree to
        derive clique placement and separator message sizes.
        """
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if assignment is None:
            assignment = partition_tree(jt, num_nodes)
        if len(assignment) != jt.num_cliques:
            raise ValueError("assignment must cover every clique")
        if assignment and max(assignment) >= num_nodes:
            raise ValueError("assignment references a node beyond num_nodes")

        profile = self.profile

        def task_node(tid: int) -> int:
            return assignment[graph.tasks[tid].clique]

        def message_entries(tid: int, dep: int) -> int:
            """Separator entries shipped when ``dep``'s output feeds ``tid``."""
            task = graph.tasks[tid]
            # The cross-clique handoffs are the MARGINALIZE entry points
            # (reading the neighbouring clique's table): model shipping the
            # separator-sized message, as a real implementation would.
            return min(task.input_size, task.output_size)

        indeg = graph.indegrees()
        node_free = [0.0] * num_nodes
        finish = [0.0] * graph.num_tasks
        compute = [0.0] * num_nodes
        sched = [0.0] * num_nodes

        ready: List = []
        counter = 0
        for tid in graph.roots():
            heapq.heappush(ready, (0.0, counter, tid))
            counter += 1
        done = 0
        makespan = 0.0
        while ready:
            t_ready, _, tid = heapq.heappop(ready)
            node = task_node(tid)
            start = max(node_free[node], t_ready)
            duration = profile.compute_seconds(graph.tasks[tid].weight)
            end = start + duration
            node_free[node] = end
            compute[node] += duration
            finish[tid] = end
            makespan = max(makespan, end)
            done += 1
            for succ in graph.succs[tid]:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    succ_node = task_node(succ)
                    ready_time = 0.0
                    for d in graph.deps[succ]:
                        arrival = finish[d]
                        if task_node(d) != succ_node:
                            delay = profile.message_seconds(
                                message_entries(succ, d)
                            )
                            arrival += delay
                            sched[succ_node] += delay
                        ready_time = max(ready_time, arrival)
                    heapq.heappush(ready, (ready_time, counter, succ))
                    counter += 1
        if done != graph.num_tasks:
            raise RuntimeError("cluster simulation deadlocked")
        return SimResult(
            policy=self.name,
            platform=profile.name,
            num_cores=num_nodes,
            makespan=makespan,
            compute_time=compute,
            sched_time=sched,
            tasks_executed=done,
        )

    def speedup_curve(
        self, graph: TaskGraph, jt: JunctionTree, nodes: List[int]
    ) -> List[float]:
        base = self.simulate(graph, jt, 1).makespan
        return [
            base / self.simulate(graph, jt, n).makespan for n in nodes
        ]
