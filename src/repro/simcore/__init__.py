"""Discrete-event multicore simulator.

Python's GIL prevents measuring shared-memory speedup directly, so the
speedup experiments run the paper's scheduling policies over the *same task
graphs* inside a discrete-event simulation with a calibrated cost model
(per-primitive operation counts, per-task scheduling overhead, lock
contention, memory-bandwidth pressure, fork/join and barrier costs).

The simulator reports per-core compute and scheduling-overhead clocks plus
the makespan, from which the benchmark harness derives the speedup curves,
load-balance profiles and overhead ratios of Figs. 5-9.
"""

from repro.simcore.profiles import (
    IBM_P655,
    OPTERON,
    XEON,
    PlatformProfile,
)
from repro.simcore.result import SimResult
from repro.simcore.simgraph import SimGraph, build_sim_graph
from repro.simcore.trace import Trace, TraceEvent
from repro.simcore.policies import (
    CentralizedPolicy,
    CollaborativePolicy,
    DataParallelPolicy,
    LevelParallelPolicy,
    OpenMPPolicy,
    SerialPolicy,
    WorkStealingPolicy,
)
from repro.simcore.priority import CriticalPathPolicy
from repro.simcore.machine import Machine
from repro.simcore.cluster import (
    GIGE_CLUSTER,
    ClusterPolicy,
    ClusterProfile,
    partition_tree,
)
from repro.simcore.hetero import CELL_BE, CellPolicy, HeteroSpec

__all__ = [
    "PlatformProfile",
    "XEON",
    "OPTERON",
    "IBM_P655",
    "SimResult",
    "SimGraph",
    "build_sim_graph",
    "Trace",
    "TraceEvent",
    "Machine",
    "ClusterProfile",
    "ClusterPolicy",
    "GIGE_CLUSTER",
    "partition_tree",
    "HeteroSpec",
    "CellPolicy",
    "CELL_BE",
    "SerialPolicy",
    "CollaborativePolicy",
    "WorkStealingPolicy",
    "CriticalPathPolicy",
    "LevelParallelPolicy",
    "OpenMPPolicy",
    "DataParallelPolicy",
    "CentralizedPolicy",
]
