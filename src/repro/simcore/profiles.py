"""Platform cost profiles for the multicore simulator.

Each profile bundles the constants of the cost model:

* ``flops_per_second`` — useful operation throughput of one core.
* ``sched_overhead`` — seconds of Allocate+Fetch bookkeeping per task in the
  collaborative scheduler.
* ``lock_cost`` / ``lock_contention`` — a lock acquisition costs
  ``lock_cost * (1 + lock_contention * (P - 1))`` seconds; contention grows
  with core count (the effect the paper observes as curves dipping at 8
  threads).
* ``memory_factor`` — shared memory-bandwidth pressure: every duration is
  scaled by ``1 + memory_factor * (P - 1)``.  This is what bounds the
  collaborative scheduler below the ideal ``P``-fold speedup (7.4 on Xeon,
  7.1 on Opteron at ``P = 8``).
* ``fork_join_cost`` — per-thread cost of spawning/joining worker threads
  (the data-parallel baseline pays it once per primitive).
* ``barrier_cost`` — per-thread cost of an OpenMP parallel-region entry or
  level barrier.
* ``stream_cap`` — maximum effective parallelism when all cores stream *the
  same* potential table simultaneously (the data-parallel baselines):
  concurrent same-table streams saturate the shared memory controllers.
  The collaborative scheduler mostly runs *different* tasks per core
  (different tables, different banks and caches), so the cap does not
  apply to it — only the milder ``memory_factor`` pressure does.  This is
  the modeled reason the paper's data-parallel baselines flatten near 4x
  while the proposed method reaches 7.4x.
* ``omp_efficiency`` — multiplier (< 1) on ``stream_cap`` for the OpenMP
  baseline: static loop scheduling wastes part of the effective streams.
* ``dispatch_base`` / ``dispatch_per_core`` / ``coord_frac`` — the
  centralized (PNL-like) scheduler's serial per-task dispatch latency
  ``dispatch_base + dispatch_per_core * P + coord_frac * P * t_task``:
  per-task coordination grows with processor count *and* message size,
  which is why its execution time rises past ~4 processors (Fig. 6).

The two x86 profiles are calibrated to the paper's observed end points, not
to the absolute 2009 wall-clock times.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PlatformProfile:
    """Constants of the multicore cost model (all times in seconds)."""

    name: str
    flops_per_second: float
    sched_overhead: float
    lock_cost: float
    lock_contention: float
    memory_factor: float
    fork_join_cost: float
    barrier_cost: float
    stream_cap: float
    omp_efficiency: float
    dispatch_base: float
    dispatch_per_core: float
    coord_frac: float

    def duration(self, flops: float, num_cores: int) -> float:
        """Seconds to execute ``flops`` operations on one core of ``P``."""
        return flops / self.flops_per_second * self.memory_scale(num_cores)

    def streamed_duration(
        self, flops: float, pieces: int, num_cores: int, static: bool = False
    ) -> float:
        """Seconds for one primitive chunked ``pieces``-ways on one table.

        Effective parallelism is capped by ``stream_cap`` (same-table
        streaming saturates the memory controllers); ``static`` applies the
        OpenMP static-scheduling efficiency factor.
        """
        cap = self.stream_cap * (self.omp_efficiency if static else 1.0)
        effective = min(float(pieces), cap)
        effective = max(effective, 1.0)
        return flops / self.flops_per_second / effective * self.memory_scale(
            num_cores
        )

    def memory_scale(self, num_cores: int) -> float:
        """Bandwidth-pressure slowdown with ``num_cores`` active."""
        return 1.0 + self.memory_factor * max(num_cores - 1, 0)

    def lock_overhead(self, num_cores: int) -> float:
        """One lock acquisition under ``num_cores``-way contention."""
        return self.lock_cost * (1.0 + self.lock_contention * max(num_cores - 1, 0))

    def task_sched_overhead(self, num_cores: int) -> float:
        """Collaborative per-task overhead: Allocate + Fetch + two locks."""
        if num_cores <= 1:
            return self.sched_overhead
        return self.sched_overhead + 2.0 * self.lock_overhead(num_cores)

    def dispatch_latency(self, num_cores: int, task_seconds: float = 0.0) -> float:
        """Centralized scheduler's serial per-task dispatch latency.

        ``task_seconds`` is the task's serial execution time; the
        coordination term models separator-table message traffic growing
        with both data size and processor count.
        """
        return (
            self.dispatch_base
            + self.dispatch_per_core * num_cores
            + self.coord_frac * num_cores * task_seconds
        )


# Intel Xeon E5335-like (2 x quad-core, 2.0 GHz): the paper's first platform.
XEON = PlatformProfile(
    name="Intel Xeon E5335-like",
    flops_per_second=2.0e9,
    sched_overhead=0.8e-6,
    lock_cost=0.2e-6,
    lock_contention=0.15,
    memory_factor=0.009,
    fork_join_cost=10.0e-6,
    barrier_cost=2.0e-6,
    stream_cap=5.0,
    omp_efficiency=0.70,
    dispatch_base=10.0e-6,
    dispatch_per_core=30.0e-6,
    coord_frac=0.01,
)

# AMD Opteron 2347-like (2 x quad-core, 1.9 GHz): the paper's second
# platform; slightly lower clock and a bit more bandwidth pressure.
OPTERON = PlatformProfile(
    name="AMD Opteron 2347-like",
    flops_per_second=1.9e9,
    sched_overhead=0.9e-6,
    lock_cost=0.25e-6,
    lock_contention=0.18,
    memory_factor=0.014,
    fork_join_cost=11.0e-6,
    barrier_cost=2.2e-6,
    stream_cap=4.8,
    omp_efficiency=0.72,
    dispatch_base=10.0e-6,
    dispatch_per_core=32.0e-6,
    coord_frac=0.01,
)

# IBM P655-like (1.5 GHz SMP): the platform of the paper's PNL measurements
# (Fig. 6); message-passing coordination makes dispatch far more expensive
# and proportional to processor count and message size.
IBM_P655 = PlatformProfile(
    name="IBM P655-like",
    flops_per_second=1.5e9,
    sched_overhead=2.0e-6,
    lock_cost=0.5e-6,
    lock_contention=0.2,
    memory_factor=0.01,
    fork_join_cost=12.0e-6,
    barrier_cost=4.0e-6,
    stream_cap=4.0,
    omp_efficiency=0.70,
    dispatch_base=20.0e-6,
    dispatch_per_core=30.0e-6,
    coord_frac=0.04,
)
