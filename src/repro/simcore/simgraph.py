"""Weight-only task graphs for simulation, with Partition-module expansion.

The simulator never touches potential values; it only needs each task's
weight (operation count) and the dependency structure.  ``build_sim_graph``
lowers a :class:`~repro.tasks.task.TaskGraph` to flat arrays and — when a
partition threshold δ is given — statically applies the Partition module's
transformation: a task whose partitionable slice exceeds δ becomes ``n``
chunk nodes feeding a combine node, the combine node inheriting the
original successors (the paper's ``T̂_n``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.tasks.task import TaskGraph

# Splitting into more chunks than a machine has cores only adds overhead;
# 32 chunks keeps 8-core runs saturated while bounding simulation size.
DEFAULT_MAX_CHUNKS = 32


@dataclass
class SimGraph:
    """Flat DAG: ``weights[i]`` operations, ``deps``/``succs`` adjacency."""

    weights: List[float] = field(default_factory=list)
    deps: List[List[int]] = field(default_factory=list)
    succs: List[List[int]] = field(default_factory=list)

    def add(self, weight: float, deps: Optional[List[int]] = None) -> int:
        nid = len(self.weights)
        deps = list(deps or [])
        self.weights.append(float(weight))
        self.deps.append(deps)
        self.succs.append([])
        for d in deps:
            self.succs[d].append(nid)
        return nid

    @property
    def num_nodes(self) -> int:
        return len(self.weights)

    def roots(self) -> List[int]:
        return [i for i, d in enumerate(self.deps) if not d]

    def indegrees(self) -> List[int]:
        return [len(d) for d in self.deps]

    def total_work(self) -> float:
        return sum(self.weights)

    def topological_order(self) -> List[int]:
        indeg = self.indegrees()
        ready = [i for i, d in enumerate(indeg) if d == 0]
        order: List[int] = []
        while ready:
            node = ready.pop()
            order.append(node)
            for s in self.succs[node]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(s)
        if len(order) != self.num_nodes:
            raise RuntimeError("simulation graph contains a cycle")
        return order

    def levels(self) -> List[List[int]]:
        """Nodes grouped by longest-path depth (for the OpenMP baseline)."""
        depth = [0] * self.num_nodes
        for nid in self.topological_order():
            for s in self.succs[nid]:
                depth[s] = max(depth[s], depth[nid] + 1)
        if not self.weights:
            return []
        buckets: List[List[int]] = [[] for _ in range(max(depth) + 1)]
        for nid, d in enumerate(depth):
            buckets[d].append(nid)
        return buckets

    def critical_path(self) -> float:
        """Heaviest dependency chain in operations (the span)."""
        finish = [0.0] * self.num_nodes
        for nid in self.topological_order():
            start = max((finish[d] for d in self.deps[nid]), default=0.0)
            finish[nid] = start + self.weights[nid]
        return max(finish, default=0.0)


def build_sim_graph(
    task_graph: TaskGraph,
    partition_threshold: Optional[int] = None,
    max_chunks: int = DEFAULT_MAX_CHUNKS,
) -> SimGraph:
    """Lower a task graph to a :class:`SimGraph`, optionally partitioned.

    With ``partition_threshold`` (the δ of Algorithm 2), any task whose
    partitionable index space exceeds δ is replaced by chunk nodes plus a
    combine node; at most ``max_chunks`` chunks are created per task.
    """
    from repro.tasks.partition_plan import combine_flops, plan_partition

    sim = SimGraph()
    exit_of: List[int] = [0] * task_graph.num_tasks
    for task in task_graph.tasks:
        dep_ids = [exit_of[d] for d in task_graph.deps[task.tid]]
        ranges = plan_partition(task, partition_threshold, max_chunks)
        if ranges is not None:
            chunk_weight = task.weight / len(ranges)
            chunk_ids = [sim.add(chunk_weight, dep_ids) for _ in ranges]
            combine_weight = combine_flops(task, len(ranges))
            exit_of[task.tid] = sim.add(combine_weight, chunk_ids)
        else:
            exit_of[task.tid] = sim.add(task.weight, dep_ids)
    return sim
