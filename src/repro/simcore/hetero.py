"""Heterogeneous (Cell-BE-like) platform policy.

The paper's related work includes a centralized scheduler for exact
inference on the Cell Broadband Engine — one PowerPC element (PPE)
coordinating eight fast synergistic elements (SPEs).  Section 3 argues
that on *homogeneous* multicores with few cores, dedicating a core to
centralized scheduling wastes it.  :class:`CellPolicy` makes that
argument quantitative: a dedicated scheduler core dispatches tasks to
``worker_count`` workers whose throughput is ``worker_speedup`` times the
base profile's.  On a Cell-like machine (fast SPEs, cheap dispatch) the
centralized design performs well; carving a scheduler out of 8 equal
x86 cores loses ~1/8 of the machine plus dispatch latency — exactly why
the paper goes collaborative.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simcore.policies import _greedy_schedule
from repro.simcore.profiles import PlatformProfile
from repro.simcore.result import SimResult
from repro.simcore.simgraph import build_sim_graph
from repro.tasks.task import TaskGraph


@dataclass(frozen=True)
class HeteroSpec:
    """Shape of a heterogeneous chip: one scheduler + uniform workers."""

    worker_count: int
    worker_speedup: float  # worker flops relative to the base profile
    dispatch_seconds: float  # scheduler's serial per-task dispatch cost

    def __post_init__(self):
        if self.worker_count < 1:
            raise ValueError("worker_count must be >= 1")
        if self.worker_speedup <= 0:
            raise ValueError("worker_speedup must be positive")
        if self.dispatch_seconds < 0:
            raise ValueError("dispatch_seconds must be non-negative")


# Cell BE-like: 8 SPEs roughly 4x the PPE's scalar throughput on
# streaming kernels, with low mailbox-dispatch latency.
CELL_BE = HeteroSpec(worker_count=8, worker_speedup=4.0, dispatch_seconds=2.0e-6)


class CellPolicy:
    """Centralized scheduling on a one-scheduler + N-workers chip."""

    name = "cell-centralized"

    def __init__(self, spec: HeteroSpec = CELL_BE):
        self.spec = spec

    def simulate(
        self, graph: TaskGraph, profile: PlatformProfile, num_cores: int = None
    ) -> SimResult:
        """Simulate on the heterogeneous chip described by ``spec``.

        ``num_cores`` is accepted for interface compatibility and, when
        given, overrides the spec's worker count.
        """
        workers = num_cores if num_cores is not None else self.spec.worker_count
        spec = self.spec
        sim = build_sim_graph(graph)

        # Scale durations by the worker speedup via a derived profile.
        fast = PlatformProfile(
            name=f"{profile.name} + {workers} fast workers",
            flops_per_second=profile.flops_per_second * spec.worker_speedup,
            sched_overhead=profile.sched_overhead,
            lock_cost=profile.lock_cost,
            lock_contention=profile.lock_contention,
            memory_factor=profile.memory_factor,
            fork_join_cost=profile.fork_join_cost,
            barrier_cost=profile.barrier_cost,
            stream_cap=profile.stream_cap,
            omp_efficiency=profile.omp_efficiency,
            dispatch_base=profile.dispatch_base,
            dispatch_per_core=profile.dispatch_per_core,
            coord_frac=profile.coord_frac,
        )
        result = _greedy_schedule(
            sim,
            fast,
            workers,
            per_task_overhead=0.0,
            dispatch_latency=spec.dispatch_seconds,
            worker_cores=workers,
        )
        result.policy = self.name
        result.num_cores = workers + 1  # workers plus the scheduler core
        return result
