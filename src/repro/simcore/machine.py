"""A simulated multicore machine: platform profile + core count facade.

Bundles the pieces a study needs — run a policy, compare several, sweep a
speedup curve — so benchmark and example code reads declaratively.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.simcore.profiles import PlatformProfile
from repro.simcore.result import SimResult
from repro.tasks.task import TaskGraph


class Machine:
    """``Machine(XEON, 8)`` — a profile bound to a core count."""

    def __init__(self, profile: PlatformProfile, num_cores: int):
        if num_cores < 1:
            raise ValueError("num_cores must be >= 1")
        self.profile = profile
        self.num_cores = num_cores

    def run(
        self, policy, graph: TaskGraph, fault_plan=None, **kwargs
    ) -> SimResult:
        """Simulate ``policy`` over ``graph`` on this machine.

        ``fault_plan`` (a :class:`~repro.sched.faults.FaultPlan` using its
        ``sim_*`` hooks) injects core kills and task delays into policies
        that support them; only forwarded when set, so fault-oblivious
        policies keep their signatures.
        """
        if fault_plan is not None:
            kwargs["fault_plan"] = fault_plan
        return policy.simulate(graph, self.profile, self.num_cores, **kwargs)

    def compare(
        self, policies: Sequence, graph: TaskGraph
    ) -> Dict[str, SimResult]:
        """Run several policies; results keyed by policy name."""
        results = {}
        for policy in policies:
            result = self.run(policy, graph)
            results[result.policy or policy.name] = result
        return results

    def speedup_curve(
        self, policy, graph: TaskGraph, cores: Sequence[int]
    ) -> List[float]:
        """Speedup at each core count, against the policy's 1-core run."""
        base = policy.simulate(graph, self.profile, 1).makespan
        return [
            base / policy.simulate(graph, self.profile, p).makespan
            for p in cores
        ]

    def __repr__(self) -> str:
        return f"Machine({self.profile.name!r}, cores={self.num_cores})"
