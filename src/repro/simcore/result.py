"""Simulation results: per-core clocks and derived metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class SimResult:
    """Outcome of simulating one policy on one platform at one core count.

    ``compute_time`` / ``sched_time`` are per-core accumulated seconds;
    ``makespan`` is the simulated wall-clock of the whole propagation.
    """

    policy: str
    platform: str
    num_cores: int
    makespan: float
    compute_time: List[float] = field(default_factory=list)
    sched_time: List[float] = field(default_factory=list)
    tasks_executed: int = 0
    # Populated only when the policy was asked to record a trace.
    trace: object = None
    sim_graph: object = None
    # Fault-injection accounting (see repro.sched.faults.FaultPlan's
    # sim_* hooks): cores removed from service mid-run and total faults
    # (kills + delays) the simulation applied.
    cores_lost: int = 0
    faults_injected: int = 0

    def total_compute(self) -> float:
        return sum(self.compute_time)

    def total_sched(self) -> float:
        return sum(self.sched_time)

    def sched_ratio(self) -> float:
        """Scheduling overhead as a fraction of total busy time (Fig. 8b)."""
        busy = self.total_compute() + self.total_sched()
        if busy == 0:
            return 0.0
        return self.total_sched() / busy

    def utilization(self) -> float:
        """Mean fraction of the makespan each core spent busy."""
        if self.makespan == 0 or not self.compute_time:
            return 1.0
        busy = self.total_compute() + self.total_sched()
        return busy / (self.makespan * len(self.compute_time))

    def load_imbalance(self) -> float:
        """max/mean per-core compute time; 1.0 is perfect balance (Fig. 8a)."""
        if not self.compute_time:
            return 1.0
        mean = sum(self.compute_time) / len(self.compute_time)
        if mean == 0:
            return 1.0
        return max(self.compute_time) / mean

    def speedup_over(self, baseline: "SimResult") -> float:
        """``baseline.makespan / self.makespan``."""
        if self.makespan == 0:
            return float("inf")
        return baseline.makespan / self.makespan

    def energy_joules(
        self, active_watts: float = 15.0, idle_watts: float = 5.0
    ) -> float:
        """Simple per-core energy model: busy at ``active_watts``, the
        rest of the makespan at ``idle_watts`` (defaults approximate a
        2009-era core and its idle floor).
        """
        if active_watts < 0 or idle_watts < 0:
            raise ValueError("power draws must be non-negative")
        cores = max(len(self.compute_time), 1)
        busy = self.total_compute() + self.total_sched()
        idle = max(self.makespan * cores - busy, 0.0)
        return busy * active_watts + idle * idle_watts

    def energy_delay_product(
        self, active_watts: float = 15.0, idle_watts: float = 5.0
    ) -> float:
        """Energy x makespan, the usual efficiency figure of merit."""
        return self.energy_joules(active_watts, idle_watts) * self.makespan
