"""Human-readable renderings of junction trees and task graphs.

ASCII trees for terminal inspection and Graphviz DOT export for real
figures; both are pure string builders with no external dependencies.
"""

from __future__ import annotations

from typing import List

from repro.jt.junction_tree import JunctionTree
from repro.tasks.task import TaskGraph


def render_tree(jt: JunctionTree, max_vars: int = 6) -> str:
    """ASCII rendering, one clique per line, children indented.

    Scopes longer than ``max_vars`` are elided.
    """
    lines: List[str] = []

    def scope_of(i: int) -> str:
        variables = jt.cliques[i].variables
        if len(variables) > max_vars:
            head = ", ".join(str(v) for v in variables[:max_vars])
            return f"{{{head}, ... +{len(variables) - max_vars}}}"
        return "{" + ", ".join(str(v) for v in variables) + "}"

    def walk(node: int, prefix: str, is_last: bool) -> None:
        connector = "" if node == jt.root else ("`-- " if is_last else "|-- ")
        lines.append(f"{prefix}{connector}C{node} {scope_of(node)}")
        child_prefix = prefix if node == jt.root else (
            prefix + ("    " if is_last else "|   ")
        )
        children = jt.children[node]
        for pos, child in enumerate(children):
            walk(child, child_prefix, pos == len(children) - 1)

    walk(jt.root, "", True)
    return "\n".join(lines)


def tree_to_dot(jt: JunctionTree, show_separators: bool = True) -> str:
    """Graphviz DOT for a junction tree (cliques as boxes, separator labels)."""
    lines = ["graph junction_tree {", "  node [shape=box];"]
    for clique in jt.cliques:
        scope = ",".join(str(v) for v in clique.variables)
        lines.append(
            f'  c{clique.index} [label="C{clique.index}\\n{{{scope}}}"];'
        )
    for child in range(jt.num_cliques):
        parent = jt.parent[child]
        if parent is None:
            continue
        if show_separators:
            sep = ",".join(str(v) for v in jt.separator(child, parent))
            lines.append(f'  c{parent} -- c{child} [label="{{{sep}}}"];')
        else:
            lines.append(f"  c{parent} -- c{child};")
    lines.append("}")
    return "\n".join(lines)


def task_graph_to_dot(graph: TaskGraph) -> str:
    """Graphviz DOT for a task dependency graph, coloured by phase."""
    colors = {"collect": "lightblue", "distribute": "lightsalmon"}
    lines = [
        "digraph task_graph {",
        "  rankdir=TB;",
        '  node [shape=ellipse, style=filled];',
    ]
    for task in graph.tasks:
        label = (
            f"{task.kind.value[:4]}\\n{task.phase[:4]} e{task.edge}"
        )
        lines.append(
            f'  t{task.tid} [label="{label}", '
            f'fillcolor="{colors.get(task.phase, "white")}"];'
        )
    for tid, succs in enumerate(graph.succs):
        for s in succs:
            lines.append(f"  t{tid} -> t{s};")
    lines.append("}")
    return "\n".join(lines)
