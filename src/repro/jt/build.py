"""Bayesian network -> junction tree conversion.

Pipeline: moralize, triangulate, extract maximal elimination cliques, connect
them with a maximum-weight spanning tree over separator sizes (which yields a
valid junction tree satisfying the running intersection property), then
absorb each CPT into one covering clique.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.bn.moralization import moralize
from repro.bn.network import BayesianNetwork
from repro.bn.triangulation import elimination_cliques, triangulate
from repro.jt.junction_tree import Clique, JunctionTree
from repro.potential.primitives import extend
from repro.potential.table import PotentialTable


def _max_spanning_tree(
    cliques: List[Tuple[int, ...]]
) -> List[Optional[int]]:
    """Parent array of a maximum-separator-size spanning tree (Prim).

    Junction-tree theory: any maximum-weight spanning tree of the clique
    graph, weighted by pairwise intersection size, satisfies the running
    intersection property.  Ties are broken by lower clique index for
    determinism.  The root is clique 0.
    """
    n = len(cliques)
    sets = [set(c) for c in cliques]
    parent: List[Optional[int]] = [None] * n
    in_tree = [False] * n
    best_weight = [-1] * n
    best_parent = [0] * n
    in_tree[0] = True
    for j in range(1, n):
        best_weight[j] = len(sets[0] & sets[j])
    for _ in range(n - 1):
        pick = -1
        for j in range(n):
            if not in_tree[j] and (pick == -1 or best_weight[j] > best_weight[pick]):
                pick = j
        in_tree[pick] = True
        parent[pick] = best_parent[pick]
        for j in range(n):
            if not in_tree[j]:
                w = len(sets[pick] & sets[j])
                if w > best_weight[j]:
                    best_weight[j] = w
                    best_parent[j] = pick
    return parent


def junction_tree_from_network(
    bn: BayesianNetwork,
    heuristic: str = "min-fill",
    on_stage: Optional[Callable[[str], None]] = None,
) -> JunctionTree:
    """Build a junction tree for ``bn`` with CPTs absorbed into potentials.

    After a full two-phase propagation the tree is calibrated: each clique
    potential is the (unnormalized) marginal over its scope.

    ``on_stage``, when given, is called with a stage name (``"moralize"``,
    ``"triangulate"``, ``"spanning-tree"``, ``"absorb-cpts"``) *before*
    each pipeline stage runs.  The model registry passes a closure that
    raises :class:`~repro.serve.request.CompileDeadlineExceeded` once the
    requesting client's deadline has passed, turning this monolithic
    build into a cooperatively cancellable compile; any exception the
    hook raises propagates unchanged.
    """
    if on_stage is not None:
        on_stage("moralize")
    moral = moralize(bn)
    if on_stage is not None:
        on_stage("triangulate")
    chordal, order = triangulate(moral, bn.cardinalities, heuristic)
    scopes = elimination_cliques(chordal, order)
    if not scopes:
        raise ValueError("network produced no cliques")
    if on_stage is not None:
        on_stage("spanning-tree")
    parent = _max_spanning_tree(scopes)
    cliques = [
        Clique(i, scope, [bn.cardinalities[v] for v in scope])
        for i, scope in enumerate(scopes)
    ]
    jt = JunctionTree(cliques, parent)

    # Every clique starts as the identity potential; each CPT multiplies into
    # exactly one covering clique (family coverage holds because moralization
    # connects each variable to all its parents).
    jt.initialize_potentials()
    if on_stage is not None:
        on_stage("absorb-cpts")
    for v in range(bn.num_variables):
        cpt = bn.cpt(v)
        host = jt.clique_containing(cpt.variables)
        clique = jt.cliques[host]
        extended = extend(cpt, clique.variables, clique.cardinalities)
        current = jt.potential(host)
        jt.set_potential(
            host,
            PotentialTable(
                clique.variables,
                clique.cardinalities,
                current.values * extended.values,
            ),
        )
    return jt
