"""The junction-tree data structure.

A junction tree ``J = (T, P̂)`` is a rooted tree of cliques; each clique is a
set of random variables with a potential table, and each tree edge carries a
separator (the intersection of the adjacent cliques' scopes).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.potential.table import PotentialTable


class Clique:
    """One vertex of a junction tree.

    Parameters
    ----------
    index:
        Position of the clique in the tree's clique list.
    variables:
        Variable ids in the clique's scope (order fixes the potential axes).
    cardinalities:
        Number of states of each scope variable.
    """

    __slots__ = ("index", "variables", "cardinalities")

    def __init__(
        self, index: int, variables: Sequence[int], cardinalities: Sequence[int]
    ):
        self.index = int(index)
        self.variables = tuple(int(v) for v in variables)
        self.cardinalities = tuple(int(c) for c in cardinalities)
        if len(self.variables) != len(set(self.variables)):
            raise ValueError(f"clique {index} has duplicate variables")
        if len(self.variables) != len(self.cardinalities):
            raise ValueError(f"clique {index} scope/cardinality length mismatch")

    @property
    def width(self) -> int:
        """Number of variables in the clique (``w_C`` in the paper)."""
        return len(self.variables)

    @property
    def table_size(self) -> int:
        """Number of potential-table entries (``r^w`` for uniform arity)."""
        size = 1
        for c in self.cardinalities:
            size *= c
        return size

    def card_of(self, variable: int) -> int:
        return self.cardinalities[self.variables.index(variable)]

    def __repr__(self) -> str:
        return f"Clique({self.index}, vars={self.variables})"


class JunctionTree:
    """A rooted tree of cliques with per-clique potential tables.

    The tree is stored as a parent array (``parent[root] is None``) plus
    children lists.  Potentials are optional until
    :meth:`initialize_potentials` or an explicit assignment; structural
    algorithms (rerooting, task-graph construction) only need the skeleton.
    """

    def __init__(self, cliques: Sequence[Clique], parent: Sequence[Optional[int]]):
        self.cliques: List[Clique] = list(cliques)
        if len(parent) != len(self.cliques):
            raise ValueError("parent array length must match clique count")
        self.parent: List[Optional[int]] = [
            None if p is None else int(p) for p in parent
        ]
        roots = [i for i, p in enumerate(self.parent) if p is None]
        if len(roots) != 1:
            raise ValueError(f"expected exactly one root, found {roots}")
        self.root: int = roots[0]
        self.children: List[List[int]] = [[] for _ in self.cliques]
        for i, p in enumerate(self.parent):
            if p is not None:
                if not 0 <= p < len(self.cliques):
                    raise ValueError(f"clique {i} has out-of-range parent {p}")
                self.children[p].append(i)
        self._check_connected()
        self.potentials: Dict[int, PotentialTable] = {}

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #

    @property
    def num_cliques(self) -> int:
        return len(self.cliques)

    def _check_connected(self) -> None:
        seen = 0
        stack = [self.root]
        visited = [False] * self.num_cliques
        while stack:
            node = stack.pop()
            if visited[node]:
                raise ValueError("parent array contains a cycle")
            visited[node] = True
            seen += 1
            stack.extend(self.children[node])
        if seen != self.num_cliques:
            raise ValueError("junction tree is not connected")

    def separator(self, a: int, b: int) -> Tuple[int, ...]:
        """Shared variables of two adjacent cliques, in clique-``a`` order."""
        if self.parent[a] != b and self.parent[b] != a:
            raise ValueError(f"cliques {a} and {b} are not adjacent")
        b_vars = set(self.cliques[b].variables)
        # An empty separator is legal (disconnected components joined by the
        # spanning tree); the message degenerates to a scalar total mass.
        return tuple(v for v in self.cliques[a].variables if v in b_vars)

    def separator_cards(self, a: int, b: int) -> Tuple[int, ...]:
        sep = self.separator(a, b)
        return tuple(self.cliques[a].card_of(v) for v in sep)

    def leaves(self) -> List[int]:
        """Cliques with no children."""
        return [i for i in range(self.num_cliques) if not self.children[i]]

    def degree(self, i: int) -> int:
        """Undirected degree: children plus the parent edge (``k_t``)."""
        return len(self.children[i]) + (0 if self.parent[i] is None else 1)

    def preorder(self) -> List[int]:
        """Root-first traversal; parents precede children."""
        order = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(reversed(self.children[node]))
        return order

    def postorder(self) -> List[int]:
        """Children-first traversal; the root comes last."""
        return list(reversed(self._reverse_postorder()))

    def _reverse_postorder(self) -> List[int]:
        order = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(self.children[node])
        return order

    def depth_of(self, i: int) -> int:
        """Number of edges from the root to clique ``i``."""
        depth = 0
        node = i
        while self.parent[node] is not None:
            node = self.parent[node]
            depth += 1
        return depth

    def path_to_root(self, i: int) -> List[int]:
        """Cliques from ``i`` up to and including the root."""
        path = [i]
        while self.parent[path[-1]] is not None:
            path.append(self.parent[path[-1]])
        return path

    def undirected_adjacency(self) -> List[List[int]]:
        """Neighbour lists of the underlying undirected tree."""
        adj: List[List[int]] = [[] for _ in self.cliques]
        for i, p in enumerate(self.parent):
            if p is not None:
                adj[i].append(p)
                adj[p].append(i)
        return adj

    # ------------------------------------------------------------------ #
    # Potentials
    # ------------------------------------------------------------------ #

    def initialize_potentials(
        self, rng: np.random.Generator = None
    ) -> None:
        """Set every clique potential: random positive if ``rng``, else ones."""
        for clique in self.cliques:
            if rng is None:
                table = PotentialTable.ones(clique.variables, clique.cardinalities)
            else:
                table = PotentialTable.random(
                    clique.variables, clique.cardinalities, rng
                )
            self.potentials[clique.index] = table

    def potential(self, i: int) -> PotentialTable:
        if i not in self.potentials:
            raise KeyError(f"clique {i} has no potential assigned")
        return self.potentials[i]

    def set_potential(self, i: int, table: PotentialTable) -> None:
        clique = self.cliques[i]
        if set(table.variables) != set(clique.variables):
            raise ValueError(
                f"potential scope {table.variables} does not match clique "
                f"scope {clique.variables}"
            )
        self.potentials[i] = table.aligned_to(clique.variables)

    def copy(self) -> "JunctionTree":
        """Deep copy: structure and potentials."""
        twin = JunctionTree(
            [Clique(c.index, c.variables, c.cardinalities) for c in self.cliques],
            list(self.parent),
        )
        twin.potentials = {i: t.copy() for i, t in self.potentials.items()}
        return twin

    def clique_containing(self, variables: Iterable[int]) -> int:
        """Smallest clique whose scope covers ``variables``.

        Raises ``KeyError`` when no clique covers the set (family coverage
        is guaranteed for trees built from a Bayesian network).
        """
        wanted = set(variables)
        best = None
        for clique in self.cliques:
            if wanted <= set(clique.variables):
                if best is None or clique.table_size < best.table_size:
                    best = clique
        if best is None:
            raise KeyError(f"no clique contains variables {sorted(wanted)}")
        return best.index

    def __repr__(self) -> str:
        return (
            f"JunctionTree(num_cliques={self.num_cliques}, root={self.root})"
        )
