"""Junction trees: structure, construction, synthetic generation, rerooting."""

from repro.jt.junction_tree import Clique, JunctionTree
from repro.jt.build import junction_tree_from_network
from repro.jt.generation import (
    parameter_sweep_tree,
    synthetic_tree,
    template_tree,
)
from repro.jt.rerooting import (
    clique_cost,
    critical_path_weight,
    reroot,
    select_root,
    select_root_bruteforce,
)
from repro.jt.validate import check_running_intersection, check_tree_structure
from repro.jt.calibration import check_calibrated, separator_disagreements
from repro.jt.stats import summarize_tree, treewidth
from repro.jt.render import render_tree, task_graph_to_dot, tree_to_dot

__all__ = [
    "check_calibrated",
    "separator_disagreements",
    "summarize_tree",
    "treewidth",
    "render_tree",
    "tree_to_dot",
    "task_graph_to_dot",
    "Clique",
    "JunctionTree",
    "junction_tree_from_network",
    "template_tree",
    "synthetic_tree",
    "parameter_sweep_tree",
    "clique_cost",
    "critical_path_weight",
    "select_root",
    "select_root_bruteforce",
    "reroot",
    "check_running_intersection",
    "check_tree_structure",
]
