"""Junction-tree rerooting for critical-path minimization (Section 4).

Evidence propagation in a path takes at least as long as in any other path,
so among all rerootings of a junction tree the one minimizing the weighted
critical path gives the best parallel schedule.  This module implements:

* :func:`clique_cost` — the per-clique work estimate of Eq. 2
  (``w_C * k * |table|``: each of the ``k`` neighbour updates runs the
  primitives over the ``r^w``-entry table, with a width factor for the
  per-entry index arithmetic),
* :func:`critical_path_weight` — heaviest root-to-clique path weight,
* :func:`select_root_bruteforce` — the straightforward ``O(w_C N^2)``
  try-every-root baseline,
* :func:`select_root` — the paper's ``O(w_C N)`` Algorithm 1: find the
  heaviest leaf-to-leaf path (the weighted diameter; Lemma 1 shows one of
  its endpoints realizes the critical path), then pick its weighted
  midpoint as the new root,
* :func:`reroot` — reorient all edges toward a new root (preorder walk).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.jt.junction_tree import JunctionTree


def clique_cost(jt: JunctionTree, index: int) -> float:
    """Evidence-propagation work estimate for one clique (Eq. 2 term)."""
    clique = jt.cliques[index]
    degree = max(jt.degree(index), 1)
    return float(clique.width * degree * clique.table_size)


def all_clique_costs(jt: JunctionTree) -> List[float]:
    """Eq. 2 cost of every clique, indexed by clique."""
    return [clique_cost(jt, i) for i in range(jt.num_cliques)]


def path_weight(jt: JunctionTree, path: List[int]) -> float:
    """Total weight of a path, both endpoints inclusive."""
    costs = all_clique_costs(jt)
    return sum(costs[i] for i in path)


def critical_path_weight(
    jt: JunctionTree, root: Optional[int] = None
) -> float:
    """Weight of the heaviest path from ``root`` to any clique.

    ``root`` defaults to the tree's current root.  Works on the underlying
    undirected tree, so any clique may be queried as a hypothetical root
    without materializing the rerooted tree.
    """
    if root is None:
        root = jt.root
    costs = all_clique_costs(jt)
    adj = jt.undirected_adjacency()
    best = 0.0
    dist = [-1.0] * jt.num_cliques
    dist[root] = costs[root]
    stack = [root]
    while stack:
        node = stack.pop()
        best = max(best, dist[node])
        for nxt in adj[node]:
            if dist[nxt] < 0:
                dist[nxt] = dist[node] + costs[nxt]
                stack.append(nxt)
    return best


def select_root_bruteforce(jt: JunctionTree) -> Tuple[int, float]:
    """Try every clique as root; return ``(best_root, critical_path_weight)``.

    ``O(N^2)`` reference implementation used to validate Algorithm 1.
    Ties break toward the lower clique index.
    """
    best_root = 0
    best_weight = float("inf")
    for candidate in range(jt.num_cliques):
        weight = critical_path_weight(jt, candidate)
        if weight < best_weight:
            best_weight = weight
            best_root = candidate
    return best_root, best_weight


def heaviest_leaf_path(jt: JunctionTree) -> List[int]:
    """The heaviest weighted leaf-to-leaf path (Algorithm 1, lines 1-16).

    One bottom-up sweep computes, for every clique ``i``, the weight ``v_i``
    of the heaviest downward path starting at ``i`` together with the best
    (``p_i``) and second-best (``q_i``) children; the heaviest leaf-to-leaf
    path peaks at the clique maximizing ``v_i + v_{q_i}``.
    """
    n = jt.num_cliques
    costs = all_clique_costs(jt)
    v = list(costs)
    p: List[Optional[int]] = [None] * n
    q: List[Optional[int]] = [None] * n
    for i in jt.postorder():
        children = jt.children[i]
        if not children:
            continue
        ranked = sorted(children, key=lambda c: v[c], reverse=True)
        p[i] = ranked[0]
        if len(ranked) > 1:
            q[i] = ranked[1]
        v[i] = costs[i] + v[p[i]]

    def peak_weight(i: int) -> float:
        return v[i] + (v[q[i]] if q[i] is not None else 0.0)

    m = max(range(n), key=peak_weight)

    # First arm: descend best children from the peak; reversed it runs
    # leaf -> m.  Second arm: descend from the runner-up child.
    arm = [m]
    while p[arm[-1]] is not None:
        arm.append(p[arm[-1]])
    path = list(reversed(arm))
    if q[m] is not None:
        node = q[m]
        while node is not None:
            path.append(node)
            node = p[node]
    return path


def select_root(jt: JunctionTree) -> Tuple[int, float]:
    """Algorithm 1: pick the root minimizing the critical path in O(w_C N).

    Returns ``(root, critical_path_weight)``.  The root is the weighted
    midpoint of the heaviest leaf-to-leaf path: the clique minimizing
    ``max(L(C_x, C_i), L(C_i, C_y))`` over the path, which coincides with
    the paper's ``argmin |L(C_x, C_i) - L(C_i, C_y)|`` criterion at the
    crossover of the two monotone prefix weights.
    """
    if jt.num_cliques == 1:
        return 0, clique_cost(jt, 0)
    costs = all_clique_costs(jt)
    path = heaviest_leaf_path(jt)
    total = sum(costs[i] for i in path)
    prefix = 0.0
    best_root = path[0]
    best_weight = float("inf")
    for node in path:
        prefix += costs[node]
        # Weight from x to node and node to y, both inclusive of `node`.
        left = prefix
        right = total - prefix + costs[node]
        weight = max(left, right)
        if weight < best_weight:
            best_weight = weight
            best_root = node
    return best_root, critical_path_weight(jt, best_root)


def reroot(jt: JunctionTree, new_root: int) -> JunctionTree:
    """Reorient every edge toward ``new_root`` (preorder edge flip).

    Clique indices, scopes and potentials are preserved; only parent/child
    orientation changes, matching Section 4's rerooting procedure.
    """
    if not 0 <= new_root < jt.num_cliques:
        raise ValueError(f"root {new_root} out of range")
    adj = jt.undirected_adjacency()
    parent: List[Optional[int]] = [None] * jt.num_cliques
    visited = [False] * jt.num_cliques
    visited[new_root] = True
    stack = [new_root]
    while stack:
        node = stack.pop()
        for nxt in adj[node]:
            if not visited[nxt]:
                visited[nxt] = True
                parent[nxt] = node
                stack.append(nxt)
    rerooted = JunctionTree(jt.cliques, parent)
    rerooted.potentials = dict(jt.potentials)
    return rerooted


def reroot_optimally(jt: JunctionTree) -> Tuple[JunctionTree, int, float]:
    """Convenience: run Algorithm 1 and return the rerooted tree.

    Returns ``(rerooted_tree, root_index, critical_path_weight)``.
    """
    root, weight = select_root(jt)
    if root == jt.root:
        return jt, root, weight
    return reroot(jt, root), root, weight
