"""Descriptive statistics of junction trees.

Treewidth, table-memory footprint, separator sizes, depth — the numbers a
practitioner checks before deciding whether exact inference is feasible
and how well it will parallelize.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.jt.junction_tree import JunctionTree


@dataclass
class TreeStats:
    """Summary numbers for one junction tree."""

    num_cliques: int
    treewidth: int
    max_clique_size: int
    total_table_entries: int
    max_separator_size: int
    depth: int
    num_leaves: int
    avg_children: float
    width_histogram: Dict[int, int] = field(default_factory=dict)


def treewidth(jt: JunctionTree) -> int:
    """Largest clique width minus one (the induced treewidth bound)."""
    return max(c.width for c in jt.cliques) - 1


def total_table_entries(jt: JunctionTree) -> int:
    """Sum of potential-table entries over all cliques (memory proxy)."""
    return sum(c.table_size for c in jt.cliques)


def separator_sizes(jt: JunctionTree) -> List[int]:
    """Entry counts of every separator table, one per tree edge."""
    sizes = []
    for child in range(jt.num_cliques):
        parent = jt.parent[child]
        if parent is None:
            continue
        size = 1
        for card in jt.separator_cards(child, parent):
            size *= card
        sizes.append(size)
    return sizes


def tree_depth(jt: JunctionTree) -> int:
    """Edges on the longest root-to-leaf path."""
    return max((jt.depth_of(leaf) for leaf in jt.leaves()), default=0)


def width_histogram(jt: JunctionTree) -> Dict[int, int]:
    """Clique count per width."""
    hist: Dict[int, int] = {}
    for clique in jt.cliques:
        hist[clique.width] = hist.get(clique.width, 0) + 1
    return hist


def summarize_tree(jt: JunctionTree) -> TreeStats:
    """All statistics in one pass."""
    internal = [i for i in range(jt.num_cliques) if jt.children[i]]
    avg_children = (
        sum(len(jt.children[i]) for i in internal) / len(internal)
        if internal
        else 0.0
    )
    seps = separator_sizes(jt)
    return TreeStats(
        num_cliques=jt.num_cliques,
        treewidth=treewidth(jt),
        max_clique_size=max(c.table_size for c in jt.cliques),
        total_table_entries=total_table_entries(jt),
        max_separator_size=max(seps, default=0),
        depth=tree_depth(jt),
        num_leaves=len(jt.leaves()),
        avg_children=avg_children,
        width_histogram=width_histogram(jt),
    )
