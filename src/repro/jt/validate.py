"""Structural validation of junction trees.

Used by tests and by :func:`repro.jt.build.junction_tree_from_network` users
to confirm a tree is a *valid* junction tree: proper rooted-tree shape plus
the running intersection property (for every variable, the cliques
containing it form a connected subtree).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.jt.junction_tree import JunctionTree


def check_tree_structure(jt: JunctionTree) -> None:
    """Raise ``ValueError`` if the parent/children arrays are inconsistent."""
    n = jt.num_cliques
    roots = [i for i, p in enumerate(jt.parent) if p is None]
    if len(roots) != 1 or roots[0] != jt.root:
        raise ValueError(f"bad root bookkeeping: roots={roots}, root={jt.root}")
    for i, p in enumerate(jt.parent):
        if p is not None and i not in jt.children[p]:
            raise ValueError(f"clique {i} missing from children of {p}")
    child_count = sum(len(c) for c in jt.children)
    if child_count != n - 1:
        raise ValueError(f"tree has {child_count} edges, expected {n - 1}")
    if len(jt.preorder()) != n:
        raise ValueError("tree is not connected")
    for position, clique in enumerate(jt.cliques):
        if clique.index != position:
            raise ValueError(
                f"clique at position {position} has index {clique.index}"
            )


def check_running_intersection(jt: JunctionTree) -> None:
    """Raise ``ValueError`` unless the running intersection property holds."""
    occurrences: Dict[int, List[int]] = {}
    for clique in jt.cliques:
        for var in clique.variables:
            occurrences.setdefault(var, []).append(clique.index)
    adj = jt.undirected_adjacency()
    for var, members in occurrences.items():
        member_set: Set[int] = set(members)
        # BFS restricted to member cliques must reach all of them.
        start = members[0]
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for nxt in adj[node]:
                if nxt in member_set and nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        if seen != member_set:
            raise ValueError(
                f"variable {var} occurs in a disconnected clique set "
                f"{sorted(member_set)}"
            )
