"""Synthetic junction-tree generators matching the paper's workloads.

The paper evaluates on junction trees produced with Bayes Net Toolbox,
controlled by four parameters: clique count ``N``, clique width ``w_C``,
number of variable states ``r`` and average clique degree ``k``.  The
generators here produce structurally valid junction trees (running
intersection property holds by construction) with the same knobs:

* :func:`template_tree` — the Fig. 4 rerooting template: ``b + 1`` equal
  chains meeting at a junction clique, rooted at the far end of branch 0.
* :func:`synthetic_tree` — random tree with target average degree.
* :func:`parameter_sweep_tree` — convenience wrapper used by the Fig. 9
  parameter sweeps.
* :func:`paper_tree` — the three named workloads JT1/JT2/JT3 of Section 7.

Trees are generated *without* potential tables (the big paper workloads,
e.g. width-20 binary cliques, would need gigabytes); call
``tree.initialize_potentials(rng)`` when actual numeric propagation is
wanted.
"""

from __future__ import annotations

from typing import List, Optional

from repro.jt.junction_tree import Clique, JunctionTree
from repro.util.rng import SeedLike, make_rng


class _ScopeFactory:
    """Allocates clique scopes that satisfy the running intersection property.

    A child clique keeps ``separator_width`` variables of its parent's scope
    and introduces fresh variables for the rest, so every variable's
    occurrence set is a connected subtree.
    """

    def __init__(self, states: int):
        self.states = states
        self._next_var = 0

    def fresh(self, count: int) -> List[int]:
        out = list(range(self._next_var, self._next_var + count))
        self._next_var += count
        return out

    def root_scope(self, width: int) -> List[int]:
        return self.fresh(width)

    def child_scope(
        self,
        parent_scope: List[int],
        width: int,
        separator_width: int,
        rng=None,
    ) -> List[int]:
        keep = min(separator_width, len(parent_scope), width)
        if keep < 1:
            raise ValueError("separator width must be at least 1")
        if rng is None:
            shared = list(parent_scope[-keep:])
        else:
            idx = sorted(rng.choice(len(parent_scope), size=keep, replace=False))
            shared = [parent_scope[i] for i in idx]
        return shared + self.fresh(width - keep)


def _build_tree(
    scopes: List[List[int]], parent: List[Optional[int]], states: int
) -> JunctionTree:
    cliques = [
        Clique(i, scope, [states] * len(scope)) for i, scope in enumerate(scopes)
    ]
    return JunctionTree(cliques, parent)


def template_tree(
    num_branches: int,
    num_cliques: int = 512,
    clique_width: int = 15,
    states: int = 2,
) -> JunctionTree:
    """The Fig. 4 rerooting template.

    ``num_branches`` is the paper's ``b``: the tree has ``b + 1`` chains of
    (approximately) equal length joined at a junction clique ``R``.  The
    returned tree is rooted at the far end of branch 0, so the critical path
    initially spans two full branches; rerooting at ``R`` halves it.

    The junction clique is returned at index ``num_cliques - 1`` for easy
    lookup; use :func:`repro.jt.rerooting.select_root` to find it.
    """
    if num_branches < 1:
        raise ValueError("num_branches must be >= 1")
    total_branches = num_branches + 1
    if num_cliques < total_branches + 1:
        raise ValueError(
            f"need at least {total_branches + 1} cliques for {total_branches} branches"
        )
    factory = _ScopeFactory(states)
    chain_budget = num_cliques - 1  # everything except the junction clique
    base_len, extra = divmod(chain_budget, total_branches)
    lengths = [
        base_len + (1 if i < extra else 0) for i in range(total_branches)
    ]

    scopes: List[List[int]] = []
    parent: List[Optional[int]] = []

    # Junction clique placed last so branch cliques occupy 0..num_cliques-2.
    junction_index = num_cliques - 1

    # Branch 0 runs from the root (index 0) down to the junction.  We build
    # it root-first: clique 0 is the tree root, each next clique chains off
    # the previous, and the junction clique chains off branch 0's last clique.
    branch0 = lengths[0]
    scopes.append(factory.root_scope(clique_width))
    parent.append(None)
    for i in range(1, branch0):
        scopes.append(
            factory.child_scope(scopes[i - 1], clique_width, clique_width - 1)
        )
        parent.append(i - 1)

    junction_parent = branch0 - 1
    junction_vars = factory.child_scope(
        scopes[junction_parent], clique_width, clique_width - 1
    )

    # Remaining branches hang off the junction clique.
    next_index = branch0
    for length in lengths[1:]:
        prev_scope = junction_vars
        prev_index = junction_index
        for _ in range(length):
            scopes.append(
                factory.child_scope(prev_scope, clique_width, clique_width - 1)
            )
            parent.append(prev_index)
            prev_scope = scopes[-1]
            prev_index = next_index
            next_index += 1

    scopes.append(junction_vars)
    parent.append(junction_parent)
    tree = _build_tree(scopes, parent, states)
    if tree.num_cliques != num_cliques:
        raise AssertionError("template generator produced wrong clique count")
    return tree


def synthetic_tree(
    num_cliques: int,
    clique_width: int,
    states: int = 2,
    avg_children: int = 4,
    separator_width: Optional[int] = None,
    width_jitter: Optional[int] = None,
    seed: SeedLike = None,
) -> JunctionTree:
    """Random junction tree with a target *average* clique degree and width.

    ``avg_children`` is the paper's ``k``, the "average number of children"
    of a clique (Fig. 9(d)).  Internal cliques draw their child count from a
    Poisson distribution with that mean; construction is breadth-first so
    depth grows logarithmically, giving the structural parallelism the paper
    exploits.

    ``clique_width`` is an *average*, as in the paper's workload descriptions
    ("the average clique width was 20"): individual widths are drawn
    uniformly from ``[clique_width - width_jitter, clique_width +
    width_jitter]``.  ``width_jitter`` defaults to ``clique_width // 5`` and
    may be 0 for uniform widths.  The resulting size variance between
    potential tables is what makes task partitioning matter: without it, a
    level's largest clique stalls every other core.
    """
    if num_cliques < 1:
        raise ValueError("num_cliques must be >= 1")
    if clique_width < 1:
        raise ValueError("clique_width must be >= 1")
    if avg_children < 1 and num_cliques > 1:
        raise ValueError("avg_children must be >= 1 for a tree with > 1 clique")
    rng = make_rng(seed)
    if width_jitter is None:
        width_jitter = clique_width // 5
    if width_jitter < 0 or width_jitter >= clique_width:
        raise ValueError("width_jitter must be in [0, clique_width)")
    factory = _ScopeFactory(states)

    def draw_width() -> int:
        if width_jitter == 0:
            return clique_width
        return int(
            rng.integers(clique_width - width_jitter, clique_width + width_jitter + 1)
        )

    def sep_for(width: int, parent_width: int) -> int:
        if separator_width is not None:
            cap = min(separator_width, width, parent_width)
        else:
            cap = min(width, parent_width) - 1
        return max(1, cap)

    scopes = [factory.root_scope(draw_width())]
    parent: List[Optional[int]] = [None]
    frontier = [0]
    mean_children = max(avg_children, 1)
    while len(scopes) < num_cliques:
        if frontier:
            node = frontier.pop(0)
            want = int(rng.poisson(mean_children))
        else:
            # Frontier died out before the budget was spent; attach a new
            # chain to a random existing clique.
            node = int(rng.integers(len(scopes)))
            want = 1
        want = min(want, num_cliques - len(scopes))
        for _ in range(want):
            width = draw_width()
            keep = sep_for(width, len(scopes[node]))
            scopes.append(
                factory.child_scope(scopes[node], width, keep, rng)
            )
            parent.append(node)
            frontier.append(len(scopes) - 1)
    return _build_tree(scopes, parent, states)


def parameter_sweep_tree(
    num_cliques: int = 512,
    clique_width: int = 20,
    states: int = 2,
    avg_children: int = 4,
    seed: SeedLike = 0,
) -> JunctionTree:
    """A JT1-style tree with one parameter varied (Fig. 9 sweeps)."""
    return synthetic_tree(
        num_cliques=num_cliques,
        clique_width=clique_width,
        states=states,
        avg_children=avg_children,
        seed=seed,
    )


# (num_cliques, clique_width, states, avg_children) of the Section 7 workloads.
PAPER_TREES = {
    1: (512, 20, 2, 4),
    2: (256, 15, 3, 4),
    3: (128, 10, 3, 2),
}


def paper_tree(which: int, seed: SeedLike = 0) -> JunctionTree:
    """Junction tree 1, 2 or 3 from Section 7 of the paper."""
    if which not in PAPER_TREES:
        raise ValueError(f"paper defines junction trees 1-3, got {which}")
    n, w, r, k = PAPER_TREES[which]
    return synthetic_tree(
        num_cliques=n, clique_width=w, states=r, avg_children=k, seed=seed
    )
