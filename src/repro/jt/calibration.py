"""Calibration checks for propagated junction trees.

After a full two-phase propagation every pair of adjacent cliques must
agree on their separator marginal, and every clique must carry the same
total mass (the probability of the evidence).  These checks are the
library-level invariants behind the executor-equivalence tests, and are
useful for validating externally produced potentials.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.jt.junction_tree import JunctionTree
from repro.potential.primitives import marginalize
from repro.potential.table import PotentialTable


def separator_disagreements(
    jt: JunctionTree,
    potentials: Dict[int, PotentialTable],
    rtol: float = 1e-8,
    atol: float = 1e-12,
) -> List[Tuple[int, int]]:
    """Edges whose two clique-side separator marginals differ.

    Returns ``(parent, child)`` pairs; empty means the tree is calibrated.
    """
    bad = []
    for child in range(jt.num_cliques):
        parent = jt.parent[child]
        if parent is None:
            continue
        sep = jt.separator(child, parent)
        from_child = marginalize(potentials[child], sep)
        from_parent = marginalize(potentials[parent], sep)
        if not np.allclose(
            from_child.values, from_parent.values, rtol=rtol, atol=atol
        ):
            bad.append((parent, child))
    return bad


def check_calibrated(
    jt: JunctionTree,
    potentials: Dict[int, PotentialTable],
    rtol: float = 1e-8,
    atol: float = 1e-12,
) -> None:
    """Raise ``ValueError`` unless the potentials are fully calibrated.

    Checks separator agreement on every edge and equal total mass across
    all cliques.
    """
    bad = separator_disagreements(jt, potentials, rtol, atol)
    if bad:
        raise ValueError(f"separator marginals disagree on edges {bad}")
    totals = [potentials[i].total() for i in range(jt.num_cliques)]
    if totals and not np.allclose(totals, totals[0], rtol=max(rtol, 1e-6)):
        raise ValueError(
            f"clique masses are inconsistent: min {min(totals)}, "
            f"max {max(totals)}"
        )


def evidence_probability(
    jt: JunctionTree, potentials: Dict[int, PotentialTable]
) -> float:
    """``P(e)`` read off a calibrated tree (the root clique's total mass)."""
    return potentials[jt.root].total()
