"""Serialization of networks, junction trees and DBN templates (JSON)."""

from repro.io.json_io import (
    dbn_from_dict,
    dbn_to_dict,
    load_dbn,
    load_network,
    load_tree,
    network_from_dict,
    network_to_dict,
    save_dbn,
    save_network,
    save_tree,
    tree_from_dict,
    tree_to_dict,
)

__all__ = [
    "network_to_dict",
    "network_from_dict",
    "save_network",
    "load_network",
    "tree_to_dict",
    "tree_from_dict",
    "save_tree",
    "load_tree",
    "dbn_to_dict",
    "dbn_from_dict",
    "save_dbn",
    "load_dbn",
]
