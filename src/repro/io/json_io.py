"""JSON serialization for Bayesian networks and junction trees.

The format is deliberately simple and versioned:

Network document::

    {"format": "repro-network", "version": 1,
     "cardinalities": [2, 2, ...],
     "edges": [[parent, child], ...],
     "cpts": {"0": {"scope": [...], "values": [...]}, ...}}

Junction-tree document::

    {"format": "repro-junction-tree", "version": 1,
     "cliques": [{"variables": [...], "cardinalities": [...]}, ...],
     "parent": [null, 0, ...],
     "potentials": {"0": [...], ...}}   # optional, flat C-order values

Dynamic-network document (the 2-TBN template, not an unrolled net)::

    {"format": "repro-dbn", "version": 1,
     "slice_cardinalities": [3, 4, ...],
     "intra_edges": [[u, v], ...],
     "inter_edges": [[u, v], ...],
     "prior_cpts": {"0": {"scope": [...], "values": [...]}, ...},
     "transition_cpts": {"0": {"scope": [...], "values": [...]}, ...}}

Potential values are stored as flat lists in C order of the stored scope.
JSON floats round-trip ``float64`` exactly (``repr``-based), so a
serialized model reproduces bit-identical posteriors.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.bn.dbn import DynamicBayesianNetwork
from repro.bn.network import BayesianNetwork
from repro.jt.junction_tree import Clique, JunctionTree
from repro.potential.table import PotentialTable

NETWORK_FORMAT = "repro-network"
TREE_FORMAT = "repro-junction-tree"
DBN_FORMAT = "repro-dbn"
VERSION = 1

PathLike = Union[str, Path]


def _check_header(doc: Dict, expected: str) -> None:
    if doc.get("format") != expected:
        raise ValueError(
            f"expected a {expected!r} document, got {doc.get('format')!r}"
        )
    if doc.get("version") != VERSION:
        raise ValueError(f"unsupported version {doc.get('version')!r}")


# ---------------------------------------------------------------------- #
# Bayesian networks
# ---------------------------------------------------------------------- #


def network_to_dict(bn: BayesianNetwork) -> Dict:
    """Serialize a network (structure + all CPTs) to a JSON-able dict."""
    if not bn.has_all_cpts():
        raise ValueError("network must have all CPTs set before serialization")
    cpts = {}
    for v in range(bn.num_variables):
        cpt = bn.cpt(v)
        cpts[str(v)] = {
            "scope": list(cpt.variables),
            "values": cpt.values.reshape(-1).tolist(),
        }
    return {
        "format": NETWORK_FORMAT,
        "version": VERSION,
        "cardinalities": list(bn.cardinalities),
        "edges": [[p, c] for p, c in bn.edges()],
        "cpts": cpts,
    }


def network_from_dict(doc: Dict) -> BayesianNetwork:
    """Rebuild a network from :func:`network_to_dict` output."""
    _check_header(doc, NETWORK_FORMAT)
    bn = BayesianNetwork(doc["cardinalities"])
    for parent, child in doc["edges"]:
        bn.add_edge(int(parent), int(child))
    for key, entry in doc["cpts"].items():
        v = int(key)
        scope = [int(u) for u in entry["scope"]]
        cards = [bn.cardinalities[u] for u in scope]
        bn.set_cpt(
            v, PotentialTable(scope, cards, np.array(entry["values"]))
        )
    if not bn.has_all_cpts():
        raise ValueError("document is missing CPTs for some variables")
    return bn


def save_network(bn: BayesianNetwork, path: PathLike) -> None:
    """Write a network to a JSON file."""
    Path(path).write_text(json.dumps(network_to_dict(bn)))


def load_network(path: PathLike) -> BayesianNetwork:
    """Read a network from a JSON file."""
    return network_from_dict(json.loads(Path(path).read_text()))


# ---------------------------------------------------------------------- #
# Junction trees
# ---------------------------------------------------------------------- #


def tree_to_dict(jt: JunctionTree, include_potentials: bool = True) -> Dict:
    """Serialize a junction tree, optionally with its potentials."""
    doc = {
        "format": TREE_FORMAT,
        "version": VERSION,
        "cliques": [
            {
                "variables": list(c.variables),
                "cardinalities": list(c.cardinalities),
            }
            for c in jt.cliques
        ],
        "parent": list(jt.parent),
    }
    if include_potentials and jt.potentials:
        if len(jt.potentials) != jt.num_cliques:
            raise ValueError("cannot serialize a partially-initialized tree")
        doc["potentials"] = {
            str(i): jt.potential(i).values.reshape(-1).tolist()
            for i in range(jt.num_cliques)
        }
    return doc


def tree_from_dict(doc: Dict) -> JunctionTree:
    """Rebuild a junction tree from :func:`tree_to_dict` output."""
    _check_header(doc, TREE_FORMAT)
    cliques = [
        Clique(i, entry["variables"], entry["cardinalities"])
        for i, entry in enumerate(doc["cliques"])
    ]
    jt = JunctionTree(cliques, doc["parent"])
    potentials = doc.get("potentials")
    if potentials:
        for key, values in potentials.items():
            i = int(key)
            clique = jt.cliques[i]
            jt.set_potential(
                i,
                PotentialTable(
                    clique.variables, clique.cardinalities, np.array(values)
                ),
            )
    return jt


def save_tree(
    jt: JunctionTree, path: PathLike, include_potentials: bool = True
) -> None:
    """Write a junction tree to a JSON file."""
    Path(path).write_text(json.dumps(tree_to_dict(jt, include_potentials)))


def load_tree(path: PathLike) -> JunctionTree:
    """Read a junction tree from a JSON file."""
    return tree_from_dict(json.loads(Path(path).read_text()))


# ---------------------------------------------------------------------- #
# Dynamic Bayesian networks (2-TBN templates)
# ---------------------------------------------------------------------- #


def _cpts_to_dict(cpts: Dict[int, PotentialTable]) -> Dict:
    return {
        str(v): {
            "scope": list(cpt.variables),
            "values": cpt.values.reshape(-1).tolist(),
        }
        for v, cpt in cpts.items()
    }


def dbn_to_dict(dbn: DynamicBayesianNetwork) -> Dict:
    """Serialize a DBN template (structure + prior/transition CPTs)."""
    return {
        "format": DBN_FORMAT,
        "version": VERSION,
        "slice_cardinalities": list(dbn.slice_cards),
        "intra_edges": [[u, v] for u, v in dbn.intra_edges],
        "inter_edges": [[u, v] for u, v in dbn.inter_edges],
        "prior_cpts": _cpts_to_dict(dbn._prior_cpts),
        "transition_cpts": _cpts_to_dict(dbn._transition_cpts),
    }


def dbn_from_dict(doc: Dict) -> DynamicBayesianNetwork:
    """Rebuild a DBN template from :func:`dbn_to_dict` output."""
    _check_header(doc, DBN_FORMAT)
    dbn = DynamicBayesianNetwork(doc["slice_cardinalities"])
    for parent, child in doc["intra_edges"]:
        dbn.add_intra_edge(int(parent), int(child))
    for parent, child in doc["inter_edges"]:
        dbn.add_inter_edge(int(parent), int(child))

    def _table(entry: Dict) -> PotentialTable:
        scope = [int(u) for u in entry["scope"]]
        cards = [dbn.slice_cards[u % dbn.k] for u in scope]
        return PotentialTable(scope, cards, np.array(entry["values"]))

    for key, entry in doc["prior_cpts"].items():
        dbn.set_prior_cpt(int(key), _table(entry))
    for key, entry in doc["transition_cpts"].items():
        dbn.set_transition_cpt(int(key), _table(entry))
    return dbn


def save_dbn(dbn: DynamicBayesianNetwork, path: PathLike) -> None:
    """Write a DBN template to a JSON file."""
    Path(path).write_text(json.dumps(dbn_to_dict(dbn)))


def load_dbn(path: PathLike) -> DynamicBayesianNetwork:
    """Read a DBN template from a JSON file."""
    return dbn_from_dict(json.loads(Path(path).read_text()))
