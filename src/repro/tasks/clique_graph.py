"""The clique updating graph (Section 5.2, first step).

Exact inference updates the junction tree twice: evidence flows from the
leaves to the root (*collect*), then from the root back to the leaves
(*distribute*).  The clique updating graph has one node per clique per
phase; collect nodes depend on the collect nodes of their children, and
distribute nodes depend on the distribute node of their parent (the root's
distribute node is its collect node's alias).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.jt.junction_tree import JunctionTree
from repro.tasks.task import COLLECT, DISTRIBUTE

NodeId = Tuple[str, int]


class CliqueUpdatingGraph:
    """Coarse-grained dependency DAG over clique updates.

    Nodes are ``(phase, clique)`` pairs; :attr:`deps` maps each node to the
    nodes that must complete first.
    """

    def __init__(self, jt: JunctionTree):
        self.jt = jt
        self.deps: Dict[NodeId, List[NodeId]] = {}

    def nodes(self) -> List[NodeId]:
        return list(self.deps)

    def topological_order(self) -> List[NodeId]:
        indeg = {node: len(d) for node, d in self.deps.items()}
        succs: Dict[NodeId, List[NodeId]] = {node: [] for node in self.deps}
        for node, deps in self.deps.items():
            for d in deps:
                succs[d].append(node)
        ready = [node for node, d in indeg.items() if d == 0]
        order = []
        while ready:
            node = ready.pop()
            order.append(node)
            for s in succs[node]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(s)
        if len(order) != len(self.deps):
            raise RuntimeError("clique updating graph contains a cycle")
        return order


def dirty_cliques(jt: JunctionTree, variables: Iterable[int]) -> Set[int]:
    """Every clique whose scope intersects the changed-variable set.

    Conservative dirty marking for incremental repropagation: a changed
    finding on a variable invalidates the working potential of every
    clique carrying it (hard evidence is absorbed by reduction in all of
    them; the soft-evidence host is always among them).
    """
    changed = set(variables)
    return {
        i
        for i in range(jt.num_cliques)
        if changed & set(jt.cliques[i].variables)
    }


def dirty_ancestor_closure(jt: JunctionTree, dirty: Iterable[int]) -> Set[int]:
    """``dirty`` plus every ancestor up to the root.

    The closure is the rebuild set of an incremental run: a clique on the
    path from a dirty clique to the root sees a changed collect message,
    so its collect update must re-run; everything outside the closure
    keeps valid collect messages (they depend only on the evidence in
    their own subtree, which is unchanged).
    """
    closure: Set[int] = set()
    for clique in dirty:
        for node in jt.path_to_root(clique):
            if node in closure:
                break
            closure.add(node)
    return closure


def build_clique_updating_graph(jt: JunctionTree) -> CliqueUpdatingGraph:
    """Build the two-phase clique updating graph of a junction tree."""
    graph = CliqueUpdatingGraph(jt)
    for clique in range(jt.num_cliques):
        graph.deps[(COLLECT, clique)] = [
            (COLLECT, child) for child in jt.children[clique]
        ]
    for clique in range(jt.num_cliques):
        if clique == jt.root:
            # The root is fully updated once collect finishes; its
            # distribute node is a zero-work alias used as the phase pivot.
            graph.deps[(DISTRIBUTE, clique)] = [(COLLECT, clique)]
        else:
            graph.deps[(DISTRIBUTE, clique)] = [
                (DISTRIBUTE, jt.parent[clique])
            ]
    return graph
