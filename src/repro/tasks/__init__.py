"""Task decomposition of evidence propagation (Section 5).

Evidence propagation is decomposed into node-level primitive *tasks*; the
clique updating graph captures the coarse two-phase (collect/distribute)
dependencies and the task dependency graph refines each clique update into
its local primitive DAG.
"""

from repro.tasks.task import Task, TaskGraph
from repro.tasks.clique_graph import CliqueUpdatingGraph, build_clique_updating_graph
from repro.tasks.dag import build_task_graph
from repro.tasks.state import PropagationState
from repro.tasks.partition_plan import combine_flops, plan_partition
from repro.tasks.metrics import GraphSummary, summarize

__all__ = [
    "Task",
    "TaskGraph",
    "CliqueUpdatingGraph",
    "build_clique_updating_graph",
    "build_task_graph",
    "PropagationState",
    "plan_partition",
    "combine_flops",
    "GraphSummary",
    "summarize",
]
