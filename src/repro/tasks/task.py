"""Tasks and the task dependency graph.

A *task* is one execution of a node-level primitive (Section 5.1).  The
:class:`TaskGraph` is the DAG ``G`` of Section 5.2: tasks are vertices,
edges are precedence constraints, and each task carries the weight estimate
the scheduler balances on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.potential.primitives import PrimitiveKind, primitive_flops

COLLECT = "collect"
DISTRIBUTE = "distribute"
PHASES = (COLLECT, DISTRIBUTE)


@dataclass
class Task:
    """One node-level primitive execution.

    Attributes
    ----------
    tid:
        Dense task id; equals the task's offset in the graph's task list so
        the Allocate module can look tasks up in O(1) (Section 6).
    kind:
        Which primitive this task runs.
    phase:
        ``"collect"`` (leaves -> root) or ``"distribute"`` (root -> leaves).
    edge:
        The tree edge ``(parent, child)`` whose message this task serves.
    clique:
        The clique whose potential the task's pipeline updates (the parent
        during collect, the child during distribute).
    input_size / output_size:
        Potential-table entry counts, used for weights and partitioning.
    """

    tid: int
    kind: PrimitiveKind
    phase: str
    edge: Tuple[int, int]
    clique: int
    input_size: int
    output_size: int

    @property
    def weight(self) -> float:
        """Estimated operation count (the scheduler's load unit ``w_T``)."""
        return float(primitive_flops(self.kind, self.input_size, self.output_size))

    @property
    def partition_size(self) -> int:
        """Size of the index space the Partition module may split.

        Marginalization partitions its input (partial sums are added);
        the other primitives partition their output (chunks concatenate).
        """
        if self.kind is PrimitiveKind.MARGINALIZE:
            return self.input_size
        return self.output_size

    def __repr__(self) -> str:
        return (
            f"Task({self.tid}, {self.kind.value}, {self.phase}, "
            f"edge={self.edge}, clique={self.clique})"
        )


class TaskGraph:
    """DAG of tasks with predecessor/successor adjacency.

    Construction is append-only: :meth:`add_task` with explicit dependency
    ids (which must already exist, so the graph is acyclic by construction).
    """

    def __init__(self):
        self.tasks: List[Task] = []
        self.deps: List[List[int]] = []
        self.succs: List[List[int]] = []

    def add_task(
        self,
        kind: PrimitiveKind,
        phase: str,
        edge: Tuple[int, int],
        clique: int,
        input_size: int,
        output_size: int,
        deps: Optional[List[int]] = None,
    ) -> int:
        """Append a task; returns its id."""
        if phase not in PHASES:
            raise ValueError(f"unknown phase {phase!r}")
        tid = len(self.tasks)
        deps = list(deps or [])
        for d in deps:
            if not 0 <= d < tid:
                raise ValueError(
                    f"task {tid} depends on not-yet-created task {d}"
                )
        task = Task(tid, kind, phase, edge, clique, input_size, output_size)
        self.tasks.append(task)
        self.deps.append(deps)
        self.succs.append([])
        for d in deps:
            self.succs[d].append(tid)
        return tid

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    def indegrees(self) -> List[int]:
        """Initial dependency degree of every task."""
        return [len(d) for d in self.deps]

    def roots(self) -> List[int]:
        """Tasks with no dependencies (initially schedulable)."""
        return [t.tid for t in self.tasks if not self.deps[t.tid]]

    def topological_order(self) -> List[int]:
        """Kahn topological order; raises if a cycle slipped in."""
        indeg = self.indegrees()
        ready = [i for i, d in enumerate(indeg) if d == 0]
        order: List[int] = []
        while ready:
            node = ready.pop()
            order.append(node)
            for s in self.succs[node]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(s)
        if len(order) != self.num_tasks:
            raise RuntimeError("task graph contains a cycle")
        return order

    def levels(self) -> List[List[int]]:
        """Tasks grouped by longest-path depth.

        Level ``i`` contains tasks whose heaviest dependency chain has ``i``
        predecessors; a level-synchronous (OpenMP-like) executor runs one
        level per parallel-for with a barrier in between.
        """
        depth = [0] * self.num_tasks
        for tid in self.topological_order():
            for s in self.succs[tid]:
                depth[s] = max(depth[s], depth[tid] + 1)
        if not self.tasks:
            return []
        buckets: List[List[int]] = [[] for _ in range(max(depth) + 1)]
        for tid, d in enumerate(depth):
            buckets[d].append(tid)
        return buckets

    def total_work(self) -> float:
        """Sum of all task weights (the serial-work lower bound ``T_1``)."""
        return sum(t.weight for t in self.tasks)

    def critical_path_work(self) -> float:
        """Weight of the heaviest dependency chain (the span ``T_inf``)."""
        finish = [0.0] * self.num_tasks
        for tid in self.topological_order():
            start = max((finish[d] for d in self.deps[tid]), default=0.0)
            finish[tid] = start + self.tasks[tid].weight
        return max(finish, default=0.0)

    def validate(self) -> None:
        """Raise if adjacency is inconsistent or the graph is cyclic."""
        for tid, succs in enumerate(self.succs):
            for s in succs:
                if tid not in self.deps[s]:
                    raise ValueError(f"edge {tid}->{s} missing from deps")
        for tid, deps in enumerate(self.deps):
            for d in deps:
                if tid not in self.succs[d]:
                    raise ValueError(f"edge {d}->{tid} missing from succs")
        self.topological_order()
