"""Fine-grained task dependency graph construction (Section 5.2, second step).

Each clique update of the clique updating graph is replaced by its *local
task dependency graph*: per incoming message, the primitive pipeline

    MARGINALIZE -> DIVIDE -> EXTEND -> MULTIPLY

with all MULTIPLY tasks into the same clique potential serialized (they
write the same table).  Cross-clique edges follow the clique updating graph:

* the collect pipeline over edge ``(p, c)`` starts once clique ``c``'s own
  collect update finished (its last MULTIPLY task),
* the distribute pipeline over edge ``(p, c)`` starts once clique ``p``'s
  distribute update finished (the root's distribute alias is its collect
  exit).

Incremental repropagation (:mod:`repro.inference.incremental`) builds
*restricted* graphs: only the message pipelines named in
``collect_edges`` / ``distribute_edges`` are emitted, every other clique's
tables being reused from a previous run.  The restricted graph keeps the
exact dependency structure of the full graph projected onto the surviving
pipelines, so every executor runs it through the unchanged
``run(task_graph, state)`` contract.
"""

from __future__ import annotations

from typing import Collection, Dict, Optional, Tuple

from repro.jt.junction_tree import JunctionTree
from repro.potential.primitives import PrimitiveKind
from repro.tasks.task import COLLECT, DISTRIBUTE, TaskGraph


def _sizes(jt: JunctionTree, parent: int, child: int) -> Tuple[int, int]:
    """(clique table size of parent, separator table size) for an edge."""
    sep_cards = jt.separator_cards(child, parent)
    sep_size = 1
    for c in sep_cards:
        sep_size *= c
    return jt.cliques[parent].table_size, sep_size


def build_task_graph(
    jt: JunctionTree,
    collect_edges: Optional[Collection[Tuple[int, int]]] = None,
    distribute_edges: Optional[Collection[Tuple[int, int]]] = None,
    batch: int = 1,
) -> TaskGraph:
    """Construct the task dependency graph ``G`` for a junction tree.

    With the default arguments the graph is *full* — ``8 * (N - 1)``
    tasks, four primitives per edge per phase — and a single-clique tree
    yields an empty graph (nothing to propagate).

    ``collect_edges`` / ``distribute_edges`` restrict each phase to the
    given ``(parent, child)`` tree edges (``None`` keeps the phase full;
    an empty collection drops it entirely).  Callers must pass edge sets
    whose cliques hold consistent state for the skipped pipelines — see
    :func:`repro.inference.incremental.plan_incremental`, which guarantees
    the collect set is ancestor-closed and the distribute set is closed
    toward the root.

    ``batch`` scales every task's input/output size by the number of
    stacked evidence cases, so task weights and chunk plans match the
    batch-major flat index space of a batched
    :class:`~repro.tasks.state.PropagationState`.
    """
    batch = int(batch)
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    graph = TaskGraph()
    collect_edges = None if collect_edges is None else set(collect_edges)
    distribute_edges = (
        None if distribute_edges is None else set(distribute_edges)
    )
    # Exit task of each clique's collect / distribute update.
    collect_exit: Dict[int, Optional[int]] = {}
    distribute_exit: Dict[int, Optional[int]] = {}

    # ----------------------- collect phase ---------------------------- #
    # Children must be processed before parents; postorder guarantees the
    # child's collect exit exists when the parent pipeline is created.
    for p in jt.postorder():
        children = [
            c
            for c in jt.children[p]
            if collect_edges is None or (p, c) in collect_edges
        ]
        if not children:
            collect_exit[p] = None
            continue
        clique_size = jt.cliques[p].table_size * batch
        last_multiply: Optional[int] = None
        for c in children:
            child_size = jt.cliques[c].table_size * batch
            _, sep_size = _sizes(jt, p, c)
            sep_size *= batch
            edge = (p, c)
            entry_deps = []
            if collect_exit[c] is not None:
                entry_deps.append(collect_exit[c])
            marg = graph.add_task(
                PrimitiveKind.MARGINALIZE, COLLECT, edge, p,
                input_size=child_size, output_size=sep_size, deps=entry_deps,
            )
            div = graph.add_task(
                PrimitiveKind.DIVIDE, COLLECT, edge, p,
                input_size=sep_size, output_size=sep_size, deps=[marg],
            )
            ext = graph.add_task(
                PrimitiveKind.EXTEND, COLLECT, edge, p,
                input_size=sep_size, output_size=clique_size, deps=[div],
            )
            mult_deps = [ext]
            if last_multiply is not None:
                mult_deps.append(last_multiply)
            mult = graph.add_task(
                PrimitiveKind.MULTIPLY, COLLECT, edge, p,
                input_size=clique_size, output_size=clique_size,
                deps=mult_deps,
            )
            last_multiply = mult
        collect_exit[p] = last_multiply

    # ---------------------- distribute phase -------------------------- #
    distribute_exit[jt.root] = collect_exit[jt.root]
    for p in jt.preorder():
        for c in jt.children[p]:
            if distribute_edges is not None and (p, c) not in distribute_edges:
                continue
            child_size = jt.cliques[c].table_size * batch
            _, sep_size = _sizes(jt, p, c)
            sep_size *= batch
            edge = (p, c)
            entry_deps = []
            if distribute_exit.get(p) is not None:
                entry_deps.append(distribute_exit[p])
            parent_size = jt.cliques[p].table_size * batch
            marg = graph.add_task(
                PrimitiveKind.MARGINALIZE, DISTRIBUTE, edge, c,
                input_size=parent_size, output_size=sep_size, deps=entry_deps,
            )
            div = graph.add_task(
                PrimitiveKind.DIVIDE, DISTRIBUTE, edge, c,
                input_size=sep_size, output_size=sep_size, deps=[marg],
            )
            ext = graph.add_task(
                PrimitiveKind.EXTEND, DISTRIBUTE, edge, c,
                input_size=sep_size, output_size=child_size, deps=[div],
            )
            mult = graph.add_task(
                PrimitiveKind.MULTIPLY, DISTRIBUTE, edge, c,
                input_size=child_size, output_size=child_size, deps=[ext],
            )
            distribute_exit[c] = mult
    return graph
