"""Partition-module planning shared by the real scheduler and the simulator.

Algorithm 2 splits any task whose potential-table slice exceeds δ.  Two
refinements keep the split profitable:

* For EXTEND / MULTIPLY / DIVIDE the chunks are output slices written
  in place, so combining is bookkeeping only — split freely.
* For MARGINALIZE every chunk produces a *full* partial output table and
  the combiner adds them, costing ``n * |output|``.  The span of a split
  marginalization is ``|input|/n + n * |output|``, minimized at
  ``n* = sqrt(|input| / |output|)`` — and splitting only wins at all when
  ``|input| > 4 * |output|``.

:func:`plan_partition` applies both rules and returns the chunk ranges, or
``None`` when the task should run whole.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.potential.partition import chunk_ranges
from repro.potential.primitives import PrimitiveKind
from repro.tasks.task import Task


def plan_partition(
    task: Task, delta: Optional[int], max_chunks: int = 32
) -> Optional[List[Tuple[int, int]]]:
    """Chunk ranges for ``task`` under threshold ``delta``, or ``None``.

    ``None`` means the task runs unpartitioned: either partitioning is
    disabled, the task is under the threshold, or (for marginalization)
    the combine cost would eat the gain.
    """
    if delta is None:
        return None
    size = task.partition_size
    if size <= delta:
        return None
    pieces = min(-(-size // delta), max_chunks)
    if task.kind is PrimitiveKind.MARGINALIZE:
        if task.input_size < 4 * task.output_size:
            return None
        optimal = int(math.sqrt(task.input_size / max(task.output_size, 1)))
        pieces = min(pieces, max(optimal, 2))
    if pieces < 2:
        return None
    return chunk_ranges(size, -(-size // pieces))


def combine_flops(task: Task, num_chunks: int) -> float:
    """Operation count of the combiner ``T̂_n`` for a split ``task``.

    Adding partial marginalization tables costs ``n * |output|``;
    concatenation is in-place slice writes, so only bookkeeping remains.
    """
    if task.kind is PrimitiveKind.MARGINALIZE:
        return float(num_chunks * task.output_size)
    return float(num_chunks)
