"""Mutable numeric state threaded through task execution.

A :class:`PropagationState` owns working copies of the clique potentials
(with evidence absorbed), the per-edge separator tables, and the
intermediate tables flowing between the primitives of one message pipeline.
Executing the tasks of a :class:`~repro.tasks.task.TaskGraph` in any order
consistent with its dependencies leaves every clique potential calibrated.

The state supports both whole-task execution (:meth:`execute`) and the
Partition module's chunked execution (:meth:`execute_chunk` +
:meth:`combine_chunks`), which are numerically identical.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.jt.junction_tree import JunctionTree
from repro.potential import partition as chunked
from repro.potential.primitives import (
    PrimitiveKind,
    divide,
    extend,
    marginalize,
    multiply,
)
from repro.potential.table import PotentialTable
from repro.tasks.task import COLLECT, Task


class PropagationState:
    """Numeric state for one evidence-propagation run over a junction tree."""

    def __init__(
        self,
        jt: JunctionTree,
        evidence: Optional[Mapping[int, int]] = None,
        soft_evidence: Optional[Mapping[int, "np.ndarray"]] = None,
    ):
        if len(jt.potentials) != jt.num_cliques:
            raise ValueError(
                "junction tree has no potentials; call initialize_potentials()"
            )
        self.jt = jt
        self.evidence = dict(evidence or {})
        self.soft_evidence = dict(soft_evidence or {})
        # Working copies: evidence is absorbed up front (instantiating the
        # observed variables zeroes inconsistent entries; soft findings
        # multiply their likelihood vector into one host clique), leaving
        # the tree's prior potentials untouched.
        self.potentials: Dict[int, PotentialTable] = {}
        for i in range(jt.num_cliques):
            table = jt.potential(i)
            if self.evidence:
                table = table.reduce(self.evidence)
            else:
                table = table.copy()
            self.potentials[i] = table
        for var, weights in self.soft_evidence.items():
            host = jt.clique_containing([var])
            table = self.potentials[host]
            axis = table.variables.index(var)
            weights = np.asarray(weights, dtype=np.float64)
            if weights.size != table.cardinalities[axis]:
                raise ValueError(
                    f"soft evidence for variable {var} has {weights.size} "
                    f"weights, variable has {table.cardinalities[axis]} states"
                )
            shape = [1] * len(table.cardinalities)
            shape[axis] = weights.size
            self.potentials[host] = PotentialTable(
                table.variables,
                table.cardinalities,
                table.values * weights.reshape(shape),
            )
        # Separator tables start as the identity so the first DIVIDE in the
        # collect phase passes the marginal through unchanged.
        self.separators: Dict[Tuple[int, int], PotentialTable] = {}
        for child in range(jt.num_cliques):
            parent = jt.parent[child]
            if parent is None:
                continue
            sep = jt.separator(child, parent)
            cards = jt.separator_cards(child, parent)
            self.separators[(parent, child)] = PotentialTable.ones(sep, cards)
        # Message-pipeline intermediates keyed by (phase, edge, stage).
        self._inter: Dict[Tuple[str, Tuple[int, int], str], PotentialTable] = {}
        # Single-case state; batched states are built via batched()/from_cases().
        self.batch: Optional[int] = None
        self.case_evidence = None

    # ------------------------------------------------------------------ #
    # Batched construction (B evidence cases through one propagation)
    # ------------------------------------------------------------------ #

    @classmethod
    def batched(cls, jt: JunctionTree, cases) -> "PropagationState":
        """State carrying ``B`` independent evidence cases at once.

        ``cases`` is a sequence of ``(evidence, soft_evidence)`` pairs,
        one per case.  Each case's evidence is absorbed into its own batch
        row exactly as the single-case constructor would, so propagating
        the batched state is numerically identical to ``B`` separate runs.
        """
        cases = list(cases)
        if not cases:
            raise ValueError("batched state needs at least one case")
        singles = [
            cls(jt, evidence=ev, soft_evidence=soft) for ev, soft in cases
        ]
        return cls.from_cases(singles)

    @classmethod
    def from_cases(cls, states: Sequence["PropagationState"]) -> "PropagationState":
        """Stack single-case states over the same tree into a batched state.

        Works on fresh states (before propagation) and on propagated ones —
        the engine's per-case fallback path uses the latter to return a
        batched state from ``B`` individual runs.  Intermediates are only
        stacked for keys present in *every* case.
        """
        states = list(states)
        if not states:
            raise ValueError("from_cases needs at least one state")
        jt = states[0].jt
        for s in states:
            if s.jt is not jt:
                raise ValueError("all cases must share one junction tree")
            if s.batch is not None:
                raise ValueError("from_cases expects single-case states")
        state = cls.__new__(cls)
        state.jt = jt
        state.evidence = {}
        state.soft_evidence = {}
        state.batch = len(states)
        state.case_evidence = [
            (dict(s.evidence), dict(s.soft_evidence)) for s in states
        ]
        state.potentials = {
            i: PotentialTable.stack([s.potentials[i] for s in states])
            for i in range(jt.num_cliques)
        }
        state.separators = {
            edge: PotentialTable.stack([s.separators[edge] for s in states])
            for edge in states[0].separators
        }
        shared_keys = set(states[0]._inter)
        for s in states[1:]:
            shared_keys &= set(s._inter)
        state._inter = {
            key: PotentialTable.stack([s._inter[key] for s in states])
            for key in shared_keys
        }
        return state

    def _absorb_soft(self, var: int, weights: "np.ndarray") -> None:
        """Multiply a soft finding's weight vector into its host clique."""
        host = self.jt.clique_containing([var])
        table = self.potentials[host]
        axis = table.variables.index(var)
        weights = np.asarray(weights, dtype=np.float64)
        if weights.size != table.cardinalities[axis]:
            raise ValueError(
                f"soft evidence for variable {var} has {weights.size} "
                f"weights, variable has {table.cardinalities[axis]} states"
            )
        shape = [1] * len(table.cardinalities)
        shape[axis] = weights.size
        self.potentials[host] = PotentialTable(
            table.variables,
            table.cardinalities,
            table.values * weights.reshape(shape),
        )

    # ------------------------------------------------------------------ #
    # Incremental construction (reuse a previous run's tables)
    # ------------------------------------------------------------------ #

    @classmethod
    def incremental(
        cls,
        prev: "PropagationState",
        evidence: Optional[Mapping[int, int]] = None,
        soft_evidence: Optional[Mapping[int, "np.ndarray"]] = None,
        rebuild: Sequence[int] = (),
    ) -> "PropagationState":
        """State for a *restricted* repropagation reusing ``prev``'s tables.

        ``rebuild`` names the cliques whose evidence context changed (the
        dirty set plus its root-ward closure).  Their working potentials
        are reconstructed from the tree's prior potentials with the *new*
        evidence absorbed, then re-charged with the stored collect message
        ``mu[c -> i]`` (``_inter[(COLLECT, (i, c), "sep_new")]``) of every
        *clean* child — those messages depend only on evidence inside the
        child's subtree, which is unchanged by definition of the closure.
        Separators under rebuilt cliques reset to ones so a fresh collect
        pipeline passes its marginal straight through; every other table is
        carried over from ``prev``, making the skipped pipelines exact
        no-ops.

        Raises ``KeyError`` if ``prev`` lacks a stored collect message that
        a rebuilt clique needs (it never completed a collect phase over
        that edge); callers treat that as "fall back to full propagation".
        """
        if prev.batch is not None:
            raise ValueError(
                "incremental repropagation needs a single-case previous "
                "state; batched runs must repropagate from scratch"
            )
        jt = prev.jt
        state = cls.__new__(cls)
        state.jt = jt
        state.evidence = dict(evidence or {})
        state.soft_evidence = dict(soft_evidence or {})
        state.batch = None
        state.case_evidence = None
        rebuild_set = set(rebuild)

        state.potentials = {}
        for i in range(jt.num_cliques):
            if i not in rebuild_set:
                state.potentials[i] = prev.potentials[i].copy()
        for i in rebuild_set:
            table = jt.potential(i)
            if state.evidence:
                table = table.reduce(state.evidence)
            else:
                table = table.copy()
            state.potentials[i] = table
        for var, weights in state.soft_evidence.items():
            if jt.clique_containing([var]) in rebuild_set:
                state._absorb_soft(var, weights)
        for i in rebuild_set:
            for c in jt.children[i]:
                if c in rebuild_set:
                    continue  # a fresh collect pipeline will deliver mu
                mu = prev._inter[(COLLECT, (i, c), "sep_new")]
                state.potentials[i] = multiply(state.potentials[i], mu)

        state.separators = {}
        for edge, table in prev.separators.items():
            if edge[1] in rebuild_set:
                state.separators[edge] = PotentialTable.ones(
                    table.variables, table.cardinalities
                )
            else:
                state.separators[edge] = table.copy()
        state._inter = {key: table.copy() for key, table in prev._inter.items()}
        return state

    @property
    def nbytes(self) -> int:
        """Resident bytes of this state's tables.

        Sums the working clique potentials, separator tables and message
        intermediates (:class:`~repro.potential.table.PotentialTable`
        float64 entries).  The model registry charges each pooled
        session's state at this cost against its global memory budget.
        """
        total = sum(t.nbytes for t in self.potentials.values())
        total += sum(t.nbytes for t in self.separators.values())
        total += sum(t.nbytes for t in self._inter.values())
        return total

    # ------------------------------------------------------------------ #
    # Checkpoint / restore
    # ------------------------------------------------------------------ #

    def save(self, path) -> Dict[str, object]:
        """Checkpoint this state to ``path`` (npz archive + manifest).

        ``path`` may be a filesystem path or a binary file-like object.
        Returns the embedded manifest.  See
        :mod:`repro.integrity.checkpoint` for the format and guarantees
        (bit-identical restore, tree/evidence signatures, whole-state
        checksum).  Batched states are refused.
        """
        from repro.integrity.checkpoint import save_state

        return save_state(self, path)

    @classmethod
    def load(cls, jt: JunctionTree, path) -> "PropagationState":
        """Restore a checkpointed state against ``jt``.

        Refuses checkpoints from a different tree
        (:class:`~repro.integrity.checkpoint.CheckpointMismatch`) or with
        tampered bytes
        (:class:`~repro.integrity.checkpoint.CheckpointCorrupt`).
        """
        from repro.integrity.checkpoint import load_state

        return load_state(jt, path)

    # ------------------------------------------------------------------ #
    # Scope helpers
    # ------------------------------------------------------------------ #

    def edge_scopes(self, task: Task):
        """(source clique id, separator scope/cards, target clique) per task."""
        parent, child = task.edge
        sep_vars = self.jt.separator(child, parent)
        sep_cards = self.jt.separator_cards(child, parent)
        if task.phase == COLLECT:
            return child, sep_vars, sep_cards, parent
        return parent, sep_vars, sep_cards, child

    # Backwards-compatible private alias (pre-shared-memory callers).
    _edge_scopes = edge_scopes

    # ------------------------------------------------------------------ #
    # Whole-task execution
    # ------------------------------------------------------------------ #

    def execute(self, task: Task) -> None:
        """Run one task to completion against the state."""
        source, sep_vars, sep_cards, target = self._edge_scopes(task)
        key_base = (task.phase, task.edge)
        if task.kind is PrimitiveKind.MARGINALIZE:
            result = marginalize(self.potentials[source], sep_vars)
            self._inter[key_base + ("sep_new",)] = result
        elif task.kind is PrimitiveKind.DIVIDE:
            sep_new = self._inter[key_base + ("sep_new",)]
            old = self.separators[task.edge].aligned_to(sep_new.variables)
            ratio = divide(sep_new, old)
            self.separators[task.edge] = sep_new
            self._inter[key_base + ("ratio",)] = ratio
        elif task.kind is PrimitiveKind.EXTEND:
            ratio = self._inter[key_base + ("ratio",)]
            clique = self.jt.cliques[target]
            self._inter[key_base + ("extended",)] = extend(
                ratio, clique.variables, clique.cardinalities
            )
        elif task.kind is PrimitiveKind.MULTIPLY:
            extended = self._inter[key_base + ("extended",)]
            self.potentials[target] = multiply(self.potentials[target], extended)
        else:
            raise ValueError(f"task {task} has unexpected kind {task.kind}")

    # ------------------------------------------------------------------ #
    # Partitioned execution (the scheduler's Partition module)
    # ------------------------------------------------------------------ #

    def execute_chunk(self, task: Task, lo: int, hi: int) -> np.ndarray:
        """Compute one slice of ``task``; returns the partial result.

        For MARGINALIZE the slice is over the *input* flat index space and
        the result is a full-size partial separator (chunks add); for the
        other primitives the slice is over the *output* flat index space
        (chunks concatenate in order).
        """
        source, sep_vars, sep_cards, target = self._edge_scopes(task)
        key_base = (task.phase, task.edge)
        if task.kind is PrimitiveKind.MARGINALIZE:
            partial = chunked.marginalize_chunk(
                self.potentials[source], sep_vars, lo, hi
            )
            return partial.values.reshape(-1)
        if task.kind is PrimitiveKind.DIVIDE:
            sep_new = self._inter[key_base + ("sep_new",)]
            old = self.separators[task.edge].aligned_to(sep_new.variables)
            return chunked.divide_chunk(
                sep_new.values.reshape(-1), old.values.reshape(-1), lo, hi
            )
        if task.kind is PrimitiveKind.EXTEND:
            ratio = self._inter[key_base + ("ratio",)]
            clique = self.jt.cliques[target]
            return chunked.extend_chunk(
                ratio, clique.variables, clique.cardinalities, lo, hi
            )
        if task.kind is PrimitiveKind.MULTIPLY:
            extended = self._inter[key_base + ("extended",)]
            return chunked.multiply_chunk(
                self.potentials[target].values.reshape(-1),
                extended.values.reshape(-1),
                lo,
                hi,
            )
        raise ValueError(f"task {task} has unexpected kind {task.kind}")

    def combine_chunks(
        self,
        task: Task,
        parts: Sequence[np.ndarray],
        ranges: Sequence[Tuple[int, int]],
    ) -> None:
        """Finish a partitioned ``task`` from its chunk results.

        Must be called with a full partition of the task's index space, in
        the order produced by :func:`repro.potential.partition.chunk_ranges`.
        Performs exactly the state transition of :meth:`execute`.
        """
        if len(parts) != len(ranges):
            raise ValueError("parts and ranges must have equal length")
        source, sep_vars, sep_cards, target = self._edge_scopes(task)
        key_base = (task.phase, task.edge)
        if task.kind is PrimitiveKind.MARGINALIZE:
            size = int(np.prod(sep_cards)) if sep_cards else 1
            if self.batch is not None:
                size *= self.batch
            total = np.zeros(size)
            for part in parts:
                total = total + part
            self._inter[key_base + ("sep_new",)] = PotentialTable(
                sep_vars, sep_cards, total, batch=self.batch
            )
            return
        flat = np.concatenate([np.asarray(p).reshape(-1) for p in parts])
        if task.kind is PrimitiveKind.DIVIDE:
            sep_new = self._inter[key_base + ("sep_new",)]
            self.separators[task.edge] = sep_new
            self._inter[key_base + ("ratio",)] = PotentialTable(
                sep_new.variables, sep_new.cardinalities, flat,
                batch=self.batch,
            )
        elif task.kind is PrimitiveKind.EXTEND:
            clique = self.jt.cliques[target]
            self._inter[key_base + ("extended",)] = PotentialTable(
                clique.variables, clique.cardinalities, flat,
                batch=self.batch,
            )
        elif task.kind is PrimitiveKind.MULTIPLY:
            clique = self.jt.cliques[target]
            self.potentials[target] = PotentialTable(
                clique.variables, clique.cardinalities, flat,
                batch=self.batch,
            )
        else:
            raise ValueError(f"task {task} has unexpected kind {task.kind}")

    # ------------------------------------------------------------------ #
    # Shared-memory handoff (pickling-free)
    # ------------------------------------------------------------------ #

    def shared_table_plan(self, graph: "TaskGraph"):
        """Every buffer a zero-copy shared-memory run of ``graph`` needs.

        Returns a list of ``(key, variables, cardinalities, init)`` entries:
        one per working clique potential (``("pot", i)``, initialized from
        the evidence-absorbed working copy), one per separator
        (``("sep", (parent, child))``), and three per (phase, edge) message
        pipeline (``("inter", phase, edge, stage)`` for the ``sep_new``,
        ``ratio`` and ``extended`` intermediates, zero-initialized).

        The plan carries only scopes and small init arrays — workers attach
        to the buffers by offset, so no potential table is ever pickled.
        Batched states are refused: the shared-memory arena lays tables out
        per case, so the process tier falls back to per-case runs instead.
        """
        if self.batch is not None:
            raise ValueError(
                "shared-memory table plans do not support batched states"
            )
        plan = []
        for i in range(self.jt.num_cliques):
            table = self.potentials[i]
            plan.append(
                (("pot", i), table.variables, table.cardinalities, table.values)
            )
        for edge, table in self.separators.items():
            plan.append(
                (("sep", edge), table.variables, table.cardinalities, table.values)
            )
        seen = set()
        for task in graph.tasks:
            pipe = (task.phase, task.edge)
            if pipe in seen:
                continue
            seen.add(pipe)
            _, sep_vars, sep_cards, target = self.edge_scopes(task)
            clique = self.jt.cliques[target]
            plan.append(
                (("inter", task.phase, task.edge, "sep_new"), sep_vars, sep_cards, None)
            )
            plan.append(
                (("inter", task.phase, task.edge, "ratio"), sep_vars, sep_cards, None)
            )
            plan.append(
                (
                    ("inter", task.phase, task.edge, "extended"),
                    clique.variables,
                    clique.cardinalities,
                    None,
                )
            )
        return plan

    def absorb_shared(self, tables: Mapping[tuple, PotentialTable]) -> None:
        """Copy results of a shared-memory run back into this state.

        ``tables`` maps :meth:`shared_table_plan` keys to tables whose values
        may be views into a buffer about to be freed, so everything is
        deep-copied.  After this call the state is indistinguishable from
        one produced by in-process execution of the same task graph.
        """
        for key, table in tables.items():
            if key[0] == "pot":
                self.potentials[key[1]] = table.copy()
            elif key[0] == "sep":
                self.separators[key[1]] = table.copy()
            elif key[0] == "inter":
                self._inter[(key[1], key[2], key[3])] = table.copy()
            else:
                raise KeyError(f"unknown shared table key {key!r}")

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #

    def marginal(self, variable: int) -> np.ndarray:
        """Posterior ``P(variable | evidence)`` after full propagation.

        For batched states the result has shape ``(B, card)``: row ``i``
        is the posterior of case ``i``.
        """
        host = self.jt.clique_containing([variable])
        table = marginalize(self.potentials[host], (variable,))
        return table.normalize().values

    def clique_marginal(self, clique: int) -> PotentialTable:
        """Normalized joint over one clique's scope (per case if batched)."""
        return self.potentials[clique].normalize()

    def likelihood(self):
        """Probability of the evidence ``P(e)`` (root mass after collect).

        Returns a float for single-case states, an array of shape ``(B,)``
        for batched ones.
        """
        root = self.potentials[self.jt.root]
        if self.batch is not None:
            return root.case_totals()
        return root.total()
