"""Analysis metrics for task dependency graphs.

Quantifies the two kinds of parallelism the paper exploits: *structural*
(DAG width — how many tasks are independently runnable per level) and
*data* (how much weight sits in individual oversized tasks that only the
Partition module can spread).  Used by the ablation benchmarks and handy
when judging whether a workload will scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.tasks.task import TaskGraph


@dataclass
class GraphSummary:
    """Headline numbers of one task graph."""

    num_tasks: int
    total_work: float
    critical_path_work: float
    avg_parallelism: float
    max_level_width: int
    num_levels: int
    work_by_phase: Dict[str, float] = field(default_factory=dict)
    work_by_kind: Dict[str, float] = field(default_factory=dict)

    @property
    def parallelism(self) -> float:
        """``T_1 / T_inf`` — the graph's inherent speedup ceiling."""
        if self.critical_path_work == 0:
            return 1.0
        return self.total_work / self.critical_path_work


def level_widths(graph: TaskGraph) -> List[int]:
    """Number of tasks at each longest-path level (structural profile)."""
    return [len(level) for level in graph.levels()]


def level_work(graph: TaskGraph) -> List[float]:
    """Total task weight at each level."""
    return [
        sum(graph.tasks[tid].weight for tid in level)
        for level in graph.levels()
    ]


def work_by_phase(graph: TaskGraph) -> Dict[str, float]:
    """Total weight split by collect/distribute phase."""
    out: Dict[str, float] = {}
    for task in graph.tasks:
        out[task.phase] = out.get(task.phase, 0.0) + task.weight
    return out


def work_by_kind(graph: TaskGraph) -> Dict[str, float]:
    """Total weight split by primitive kind."""
    out: Dict[str, float] = {}
    for task in graph.tasks:
        key = task.kind.value
        out[key] = out.get(key, 0.0) + task.weight
    return out


def heavy_task_fraction(graph: TaskGraph, threshold: int) -> float:
    """Fraction of total work in tasks whose slice exceeds ``threshold``.

    This is the share of the workload only reachable through data
    parallelism (the Partition module) once structural width runs out.
    """
    total = graph.total_work()
    if total == 0:
        return 0.0
    heavy = sum(
        t.weight for t in graph.tasks if t.partition_size > threshold
    )
    return heavy / total


def summarize(graph: TaskGraph) -> GraphSummary:
    """Compute the full :class:`GraphSummary` of a task graph."""
    widths = level_widths(graph)
    total = graph.total_work()
    span = graph.critical_path_work()
    return GraphSummary(
        num_tasks=graph.num_tasks,
        total_work=total,
        critical_path_work=span,
        avg_parallelism=(
            graph.num_tasks / len(widths) if widths else 0.0
        ),
        max_level_width=max(widths, default=0),
        num_levels=len(widths),
        work_by_phase=work_by_phase(graph),
        work_by_kind=work_by_kind(graph),
    )
