"""Online DBN filtering over a bounded unrolled window.

A :class:`FilteringSession` keeps a **window** of ``window`` consecutive
time slices of a :class:`~repro.bn.dbn.DynamicBayesianNetwork` unrolled
into one ordinary network, served by one
:class:`~repro.inference.engine.InferenceEngine`.  Each evidence
**tick** observes the next slice's variables and repropagates
*incrementally* — the tick's findings are an evidence delta over the
previous propagation, so only the dirty part of the task DAG re-runs.
When the window fills, the session **rolls** (Murphy's interface
algorithm): the posterior joint over the forward interface of the
oldest retained boundary slice — ``P(interface | evidence up to the
retired slices)`` — becomes the *prior* of a freshly unrolled window,
encoded as chain-rule "ghost" parents of the new slice 0.  Because the
forward interface d-separates the retired past from the future, the
rolled window's posteriors are **exactly** the posteriors the fully
unrolled network would give, to float noise.

Two structural tricks keep this on the stock junction-tree machinery:

* **Ghost chain-rule prior** — an arbitrary interface joint ``α`` is
  factorized by the chain rule into per-ghost CPDs
  ``P(g_j | g_1..g_{j-1})`` (0/0 contexts filled uniform), so the rolled
  prior enters the network as ordinary CPTs.
* **Boundary clique pin** — a card-2 dummy variable with a uniform CPT
  whose parents are the boundary slice's interface variables; its
  moralization forces the interface into one clique, so the roll can
  read the joint with one ``joint_marginal`` call.

Ticks are **transactional**: a tick that is refused (deadline) or fails
(executor fault) leaves the session exactly as it was — its evidence is
retracted, time does not advance — so the stream of *applied* ticks is
always an exact filter the offline unrolled-network oracle reproduces.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.bn.dbn import DynamicBayesianNetwork
from repro.bn.network import BayesianNetwork
from repro.inference.engine import InferenceEngine
from repro.potential.table import PotentialTable
from repro.sched.faults import TaskExecutionError, check_state_health


class TickError(RuntimeError):
    """A tick was not applied; the session state is unchanged."""


class TickDeadline(TickError):
    """The tick's deadline passed before its propagation finished."""


class TickFailed(TickError):
    """Every attempt to propagate the tick failed; evidence rolled back."""


@dataclass
class TickResult:
    """What one applied tick did.

    ``t`` is the absolute time of the slice the tick observed; ``rolled``
    says whether the window retired slices first.  ``tasks_executed`` /
    ``tasks_skipped`` come from the tick's own propagation (the roll's
    rebuild propagation is accounted separately in ``roll_seconds``).
    """

    t: int
    rolled: bool = False
    tasks_executed: int = 0
    tasks_skipped: int = 0
    incremental: bool = False
    seconds: float = 0.0
    roll_seconds: float = 0.0


def _chain_rule_cpds(
    joint: PotentialTable, cards: Sequence[int]
) -> List[np.ndarray]:
    """Factorize a joint over m variables into chain-rule CPD arrays.

    Returns ``[P(x_0), P(x_1 | x_0), ...]`` where the j-th array has
    shape ``cards[:j+1]`` and is normalized over its last-listed
    variable (axis j).  Conditioning contexts with zero probability are
    filled uniform — any completion reproduces the joint exactly, since
    the zero prefix annihilates the factor.
    """
    m = len(cards)
    values = np.asarray(joint.values, dtype=np.float64)
    cpds: List[np.ndarray] = []
    for j in range(m):
        tail = tuple(range(j + 1, m))
        num = values.sum(axis=tail) if tail else values.copy()
        den = num.sum(axis=j, keepdims=True)
        with np.errstate(invalid="ignore", divide="ignore"):
            cpd = num / den
        cpd = np.where(np.isfinite(cpd), cpd, 1.0 / cards[j])
        # Kill 1e-16 division drift so BayesianNetwork.set_cpt's
        # normalization check never trips.
        cpd = cpd / cpd.sum(axis=j, keepdims=True)
        cpds.append(cpd)
    return cpds


class FilteringSession:
    """One online filtering stream over a DBN.

    Parameters
    ----------
    dbn:
        The two-slice template.  Prior CPTs must be set for every slice
        variable; transition CPTs too (a one-slice window never rolls,
        but streaming exists to roll).
    window:
        Slices held unrolled at once (>= 2).
    retire:
        Slices rolled into the prior per roll (1..window); defaults to
        ``window // 2`` so roll cost amortizes over that many cheap
        incremental ticks.
    executor:
        Executor handed to every propagation (None = serial).
    incremental:
        ``False`` forces full repropagation per tick — the benchmark's
        baseline; leave True everywhere else.
    """

    def __init__(
        self,
        dbn: DynamicBayesianNetwork,
        window: int = 8,
        retire: Optional[int] = None,
        executor=None,
        incremental: bool = True,
    ):
        if window < 2:
            raise ValueError("window must be >= 2")
        self.dbn = dbn
        self.k = dbn.k
        self.window = int(window)
        self.retire = int(retire) if retire is not None else max(1, window // 2)
        if not 1 <= self.retire <= self.window:
            raise ValueError(
                f"retire must be in [1, window={self.window}], "
                f"got {self.retire}"
            )
        self.executor = executor
        self.incremental = incremental
        self._interface: List[int] = dbn.interface()
        # Absolute time of window position 0, and of the next tick.
        self.base = 0
        self.t = 0
        # Rolled prior: normalized joint over the interface (sorted
        # template ids), None before the first roll / for an empty
        # interface.
        self._ghost_joint: Optional[PotentialTable] = None
        # Applied evidence, {absolute_t: {slice_var: finding}} — the
        # durable record rolls and resyncs rebuild from.
        self._evidence: Dict[int, Dict[int, object]] = {}
        self.ticks = 0
        self.rolls = 0
        self.last_result: Optional[TickResult] = None
        self.engine = self._build_engine()

    # ------------------------------------------------------------------ #
    # Window construction
    # ------------------------------------------------------------------ #

    def _pos_id(self, v: int, pos: int) -> int:
        """Window-network id of slice variable ``v`` at window position."""
        return pos * self.k + v

    def wid(self, v: int, t: int) -> int:
        """Window-network id of slice variable ``v`` at absolute time ``t``."""
        pos = t - self.base
        if not 0 <= pos < self.window:
            raise ValueError(
                f"time {t} outside the window "
                f"[{self.base}, {self.base + self.window})"
            )
        return self._pos_id(v, pos)

    def _build_window_network(self) -> BayesianNetwork:
        W, k = self.window, self.k
        interface = self._interface
        m = len(interface) if self._ghost_joint is not None else 0
        ghost_of = {
            v: W * k + j for j, v in enumerate(interface[:m] if m else [])
        }
        # The boundary pin: only needed when the next roll must read a
        # *joint* over >= 2 interface variables.
        dummy = W * k + m if len(interface) >= 2 else None
        cards = list(self.dbn.slice_cards) * W
        cards += [self.dbn.slice_cards[v] for v in interface[:m]]
        if dummy is not None:
            cards.append(2)
        bn = BayesianNetwork(cards)

        for pos in range(W):
            for parent, child in self.dbn.intra_edges:
                bn.add_edge(self._pos_id(parent, pos), self._pos_id(child, pos))
        for pos in range(W - 1):
            for parent, child in self.dbn.inter_edges:
                bn.add_edge(
                    self._pos_id(parent, pos), self._pos_id(child, pos + 1)
                )
        if m:
            ghosts = [ghost_of[v] for v in interface]
            for i in range(m):
                for j in range(i + 1, m):
                    bn.add_edge(ghosts[i], ghosts[j])
            for parent, child in self.dbn.inter_edges:
                bn.add_edge(ghost_of[parent], self._pos_id(child, 0))
        if dummy is not None:
            boundary = [
                self._pos_id(v, self.retire - 1) for v in interface
            ]
            for b in boundary:
                bn.add_edge(b, dummy)

        # Slice CPTs.  Position 0 uses the template prior in the first
        # epoch and the transition CPTs (previous-slice parents mapped to
        # ghosts) once the window has rolled.
        for pos in range(W):
            for v in range(self.k):
                if pos == 0 and not m and self.base == 0:
                    cpt = self.dbn._prior_cpts[v]
                    scope = [self._pos_id(int(u), 0) for u in cpt.variables]
                elif pos == 0 and not m:
                    # Rolled window, empty interface: slices are
                    # temporally disconnected, transition scopes hold
                    # only current-slice ids.
                    cpt = self.dbn._transition_cpts[v]
                    scope = [self._pos_id(int(u), 0) for u in cpt.variables]
                elif pos == 0:
                    cpt = self.dbn._transition_cpts[v]
                    scope = [
                        self._pos_id(int(u), 0)
                        if int(u) < self.k
                        else ghost_of[int(u) - self.k]
                        for u in cpt.variables
                    ]
                else:
                    cpt = self.dbn._transition_cpts[v]
                    scope = [
                        self._pos_id(int(u), pos)
                        if int(u) < self.k
                        else self._pos_id(int(u) - self.k, pos - 1)
                        for u in cpt.variables
                    ]
                bn.set_cpt(
                    self._pos_id(v, pos),
                    PotentialTable(scope, cpt.cardinalities, cpt.values),
                )

        if m:
            ghosts = [ghost_of[v] for v in interface]
            gcards = [self.dbn.slice_cards[v] for v in interface]
            joint = self._ghost_joint.aligned_to(interface)
            for j, cpd in enumerate(_chain_rule_cpds(joint, gcards)):
                scope = ghosts[: j + 1]
                bn.set_cpt(
                    ghosts[j],
                    PotentialTable(scope, gcards[: j + 1], cpd),
                )
        if dummy is not None:
            boundary = [self._pos_id(v, self.retire - 1) for v in interface]
            bcards = [self.dbn.slice_cards[v] for v in interface]
            bn.set_cpt(
                dummy,
                PotentialTable(
                    boundary + [dummy],
                    bcards + [2],
                    np.full(tuple(bcards) + (2,), 0.5),
                ),
            )
        return bn

    def _build_engine(self) -> InferenceEngine:
        """Fresh engine over the current window, evidence re-applied."""
        engine = InferenceEngine.from_network(self._build_window_network())
        for t, delta in self._evidence.items():
            for v, finding in delta.items():
                wid = self.wid(v, t)
                if isinstance(finding, (int, np.integer)):
                    engine.observe(wid, int(finding))
                else:
                    engine.observe_soft(wid, finding)
        engine.propagate(executor=self.executor, incremental=False)
        return engine

    def resync(self) -> None:
        """Rebuild the engine from the durable records (failure recovery).

        ``engine`` is dropped before the rebuild: if the rebuild itself
        fails (the executor is still faulty), the session is left marked
        dirty (``engine is None``) and the next tick retries the resync
        instead of propagating on a stale window.
        """
        self.engine = None
        self.engine = self._build_engine()

    # ------------------------------------------------------------------ #
    # Durable state (checkpoint / restore for crash recovery)
    # ------------------------------------------------------------------ #

    def snapshot_state(self) -> Dict[str, object]:
        """JSON-ready capture of everything that determines this session.

        The window geometry is constructor state; everything else — the
        absolute clock (``base``/``t``), the applied evidence, the
        rolled ghost prior, the tick/roll counters — is here.  Hard
        findings serialize as ints, soft findings and the ghost joint
        as float lists; both round-trip through JSON bit-exactly, so a
        session restored by :meth:`restore_state` answers posteriors
        identically to the one that snapshotted.
        """
        evidence: Dict[str, Dict[str, object]] = {}
        for t, delta in self._evidence.items():
            encoded: Dict[str, object] = {}
            for v, finding in delta.items():
                if isinstance(finding, (int, np.integer)):
                    encoded[str(int(v))] = int(finding)
                else:
                    encoded[str(int(v))] = [
                        float(w)
                        for w in np.asarray(
                            finding, dtype=np.float64
                        ).reshape(-1)
                    ]
            evidence[str(int(t))] = encoded
        ghost = (
            self._ghost_joint.values.reshape(-1).tolist()
            if self._ghost_joint is not None
            else None
        )
        return {
            "base": int(self.base),
            "t": int(self.t),
            "ticks": int(self.ticks),
            "rolls": int(self.rolls),
            "evidence": evidence,
            "ghost": ghost,
        }

    def restore_state(self, doc: Mapping[str, object]) -> None:
        """Adopt a :meth:`snapshot_state` capture and rebuild the engine.

        The session must have been constructed over the same DBN with
        the same window geometry (the snapshot stores neither); the
        rebuild is a full :meth:`resync`, so on success the session is
        calibrated and immediately answers posteriors for the restored
        evidence.
        """
        evidence: Dict[int, Dict[int, object]] = {}
        for t_key, encoded in doc["evidence"].items():
            delta: Dict[int, object] = {}
            for v_key, finding in encoded.items():
                if isinstance(finding, (int, np.integer)):
                    delta[int(v_key)] = int(finding)
                else:
                    delta[int(v_key)] = np.asarray(finding, dtype=np.float64)
            evidence[int(t_key)] = delta
        ghost = doc.get("ghost")
        if ghost is not None:
            cards = [self.dbn.slice_cards[v] for v in self._interface]
            joint = PotentialTable(
                self._interface,
                cards,
                np.asarray(ghost, dtype=np.float64).reshape(tuple(cards)),
            )
        else:
            joint = None
        self.base = int(doc["base"])
        self.t = int(doc["t"])
        self.ticks = int(doc.get("ticks", 0))
        self.rolls = int(doc.get("rolls", 0))
        self._evidence = evidence
        self._ghost_joint = joint
        self.resync()

    # ------------------------------------------------------------------ #
    # Rolling
    # ------------------------------------------------------------------ #

    def _roll(self) -> None:
        """Retire the oldest ``retire`` slices into the rolled prior."""
        r, k = self.retire, self.k
        if self._interface:
            # The rolled prior conditions ONLY on retired evidence:
            # retract everything at retained positions first (the engine
            # absorbs the weakening delta; this engine is discarded).
            engine = self.engine
            for t, delta in self._evidence.items():
                if t - self.base >= r:
                    for v in delta:
                        engine.retract(self.wid(v, t))
            boundary = [self._pos_id(v, r - 1) for v in self._interface]
            joint = engine.joint_marginal(boundary)
            # joint_marginal aligns to sorted window ids, which is the
            # sorted template-interface order; re-scope to template ids.
            self._ghost_joint = PotentialTable(
                self._interface, joint.cardinalities, joint.values
            )
        # Drop the engine before mutating the geometry: if the rebuild
        # below fails, the session stays marked dirty rather than
        # holding an engine whose window ids no longer match ``base``.
        self.engine = None
        self.base += r
        self._evidence = {
            t: delta for t, delta in self._evidence.items() if t >= self.base
        }
        self.rolls += 1
        self.engine = self._build_engine()

    # ------------------------------------------------------------------ #
    # Ticks
    # ------------------------------------------------------------------ #

    def tick(
        self,
        delta: Optional[Mapping[int, object]] = None,
        deadline: Optional[float] = None,
    ) -> TickResult:
        """Observe the next slice and repropagate incrementally.

        ``delta`` maps *slice-template* variable ids to findings (an
        ``int`` for a hard state, a weight sequence for soft evidence);
        an empty delta advances time with an unobserved slice.
        ``deadline`` is an absolute :func:`time.monotonic` instant.

        Raises :class:`TickDeadline` / :class:`TickFailed` **without
        applying anything**: the evidence is rolled back and ``t`` does
        not advance, so the session keeps answering for the ticks that
        *were* applied.
        """
        start = time.perf_counter()
        delta = dict(delta or {})
        for v in delta:
            if not 0 <= int(v) < self.k:
                raise ValueError(
                    f"tick evidence names slice variable {v}, "
                    f"template has 0..{self.k - 1}"
                )
        if deadline is not None and time.monotonic() >= deadline:
            raise TickDeadline("deadline passed before the tick started")
        if self.engine is None:
            # A previous failure interrupted a rebuild; retry it before
            # touching the window.
            try:
                self.resync()
            except Exception as exc:
                raise TickFailed(
                    f"resync after a failed rebuild failed again: {exc}"
                ) from exc

        roll_seconds = 0.0
        rolled = False
        if self.t - self.base >= self.window:
            roll_start = time.perf_counter()
            try:
                self._roll()
            except Exception as exc:
                try:
                    self.resync()
                except Exception:
                    pass  # still dirty; the next tick retries the resync
                raise TickFailed(f"window roll failed: {exc}") from exc
            rolled = True
            roll_seconds = time.perf_counter() - roll_start
            if deadline is not None and time.monotonic() >= deadline:
                # The roll is evidence-neutral (posteriors unchanged),
                # so keeping it while refusing the tick is safe.
                raise TickDeadline("deadline passed during the window roll")

        t = self.t
        engine = self.engine
        applied: List[int] = []
        try:
            for v, finding in delta.items():
                wid = self.wid(int(v), t)
                if isinstance(finding, (int, np.integer)):
                    engine.observe(wid, int(finding))
                else:
                    engine.observe_soft(wid, finding)
                applied.append(wid)
            state = engine.propagate(
                executor=self.executor,
                incremental=True if self.incremental else False,
                deadline=deadline,
            )
        except TaskExecutionError as exc:
            # The engine guarantees a deadline/fault abort leaves the
            # previous propagation untouched; retracting the just-applied
            # findings restores the exact pre-tick evidence.
            for wid in applied:
                engine.retract(wid)
            if exc.phase == "deadline":
                raise TickDeadline(str(exc)) from exc
            raise TickFailed(str(exc)) from exc
        except TickError:
            raise
        except Exception as exc:
            for wid in applied:
                engine.retract(wid)
            try:
                self.resync()  # the failure may have left torn tables
            except Exception:
                pass  # still dirty; the next tick retries the resync
            raise TickFailed(f"{type(exc).__name__}: {exc}") from exc

        health = check_state_health(state)
        if not health.healthy:
            for wid in applied:
                engine.retract(wid)
            try:
                self.resync()
            except Exception:
                pass  # still dirty; the next tick retries the resync
            raise TickFailed(f"unhealthy tick state: {health.summary()}")

        self._evidence[t] = delta
        self.t = t + 1
        self.ticks += 1
        stats = engine.last_stats
        result = TickResult(
            t=t,
            rolled=rolled,
            tasks_executed=getattr(stats, "tasks_executed", 0),
            tasks_skipped=getattr(stats, "tasks_skipped", 0),
            incremental=bool(getattr(stats, "incremental", False)),
            seconds=time.perf_counter() - start - roll_seconds,
            roll_seconds=roll_seconds,
        )
        self.last_result = result
        return result

    # ------------------------------------------------------------------ #
    # Posteriors
    # ------------------------------------------------------------------ #

    @property
    def earliest(self) -> int:
        """Oldest absolute time still queryable (window smoothing floor)."""
        return self.base

    def posterior(self, v: int, t: Optional[int] = None) -> np.ndarray:
        """``P(v@t | all applied ticks)`` for a time inside the window.

        ``t`` defaults to the most recent applied tick (the filtering
        posterior); older in-window times give fixed-lag smoothing.
        """
        if t is None:
            t = max(self.t - 1, 0)
        return self.engine.marginal(self.wid(int(v), int(t)))

    def posteriors(
        self,
        vars: Optional[Sequence[int]] = None,
        t: Optional[int] = None,
    ) -> Dict[int, np.ndarray]:
        """Posterior of several slice variables at one time."""
        wanted = (
            [int(v) for v in vars] if vars is not None else list(range(self.k))
        )
        return {v: self.posterior(v, t) for v in wanted}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FilteringSession(k={self.k}, window={self.window}, "
            f"retire={self.retire}, t={self.t}, base={self.base}, "
            f"rolls={self.rolls})"
        )
