"""repro.streaming — online DBN filtering over bounded windows.

A :class:`FilteringSession` turns the static junction-tree stack into a
temporal one: a bounded unrolled window of a
:class:`~repro.bn.dbn.DynamicBayesianNetwork`, advanced one evidence
tick at a time via incremental repropagation, rolled interface-algorithm
style (the retired slices' interface posterior becomes the next window's
prior) when it fills.  The served posteriors match the fully unrolled
network exactly.  :class:`~repro.serve.streaming.StreamingService`
serves many such sessions concurrently.  See ``docs/streaming.md``.
"""

from repro.streaming.session import (
    FilteringSession,
    TickDeadline,
    TickError,
    TickFailed,
    TickResult,
)

__all__ = [
    "FilteringSession",
    "TickDeadline",
    "TickError",
    "TickFailed",
    "TickResult",
]
