"""Fig. 8: load balance and scheduling overhead of the collaborative scheduler.

On junction tree 1 (Opteron profile, as in the paper), for each thread
count we report (a) the per-thread computation time — near-equal bars mean
the min-workload Allocate module balances the load — and (b) the
scheduling overhead as a fraction of busy time, which the paper bounds at
0.9 %.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.jt.generation import paper_tree
from repro.jt.rerooting import reroot_optimally
from repro.simcore.policies import CollaborativePolicy
from repro.simcore.profiles import OPTERON, PlatformProfile
from repro.tasks.dag import build_task_graph


@dataclass
class Fig8Result:
    """Per-thread-count load-balance and overhead data."""

    compute_per_thread: Dict[int, List[float]] = field(default_factory=dict)
    sched_ratio: Dict[int, float] = field(default_factory=dict)
    load_imbalance: Dict[int, float] = field(default_factory=dict)


def run_fig8(
    which_tree: int = 1,
    thread_counts: Sequence[int] = tuple(range(1, 9)),
    profile: PlatformProfile = OPTERON,
    seed: int = 0,
) -> Fig8Result:
    tree, _, _ = reroot_optimally(paper_tree(which_tree, seed=seed))
    graph = build_task_graph(tree)
    policy = CollaborativePolicy()
    result = Fig8Result()
    for p in thread_counts:
        sim = policy.simulate(graph, profile, p)
        result.compute_per_thread[p] = list(sim.compute_time)
        result.sched_ratio[p] = sim.sched_ratio()
        result.load_imbalance[p] = sim.load_imbalance()
    return result
