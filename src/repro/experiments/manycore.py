"""Many-core projection (Section 8's outlook).

The paper warns that "as more cores are integrated into a single chip,
some overheads such as lock contention will increase dramatically".  This
experiment extrapolates the calibrated model to 16-64 cores and compares
the shared-lock collaborative scheduler with the work-stealing variant:
contention caps the former while the latter keeps scaling until the task
graph's own parallelism runs out.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.jt.generation import synthetic_tree
from repro.jt.rerooting import reroot_optimally
from repro.simcore.policies import CollaborativePolicy, WorkStealingPolicy
from repro.simcore.profiles import XEON, PlatformProfile
from repro.tasks.dag import build_task_graph


def run_manycore(
    cores: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    profile: PlatformProfile = XEON,
    seed: int = 0,
) -> Dict[str, List[float]]:
    """Speedups of both schedulers at escalating core counts.

    The workload is deliberately *fine-grained* (JT1's structure with
    width-10 binary cliques, ~1K-entry tables): coarse tasks hide lock
    costs entirely, while thousands of microsecond-scale tasks expose the
    serialized global-list lock exactly as the paper predicts.
    """
    tree = synthetic_tree(
        num_cliques=1024,
        clique_width=10,
        states=2,
        avg_children=4,
        seed=seed,
    )
    tree, _, _ = reroot_optimally(tree)
    graph = build_task_graph(tree)
    results: Dict[str, List[float]] = {}
    for name, policy in (
        ("collaborative (shared locks)", CollaborativePolicy()),
        ("work-stealing (Section 8)", WorkStealingPolicy()),
    ):
        base = policy.simulate(graph, profile, 1).makespan
        results[name] = [
            base / policy.simulate(graph, profile, p).makespan
            for p in cores
        ]
    return results
