"""Fig. 5: speedup from junction-tree rerooting.

The workload is the Fig. 4 template tree — ``b + 1`` equal branches joined
at a junction clique, rooted at the far end of branch 0.  We propagate
evidence in both the original and the Algorithm-1-rerooted tree under the
collaborative scheduler *with task partitioning disabled* (as in the paper)
and report ``Sp = t_original / t_rerooted`` per core count.

Expected shape: Sp saturates at 2 once the thread count exceeds ``b``
(branch 0 alone is then the critical path), so larger ``b`` needs more
threads to reach the maximum.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.jt.generation import template_tree
from repro.jt.rerooting import reroot, select_root
from repro.simcore.policies import CollaborativePolicy
from repro.simcore.profiles import OPTERON, XEON, PlatformProfile
from repro.tasks.dag import build_task_graph


def run_fig5(
    branch_counts: Sequence[int] = (1, 2, 4, 8),
    cores: Sequence[int] = tuple(range(1, 9)),
    platforms: Sequence[PlatformProfile] = (XEON, OPTERON),
    num_cliques: int = 512,
    clique_width: int = 15,
) -> Dict[str, Dict[int, List[float]]]:
    """Rerooting speedups: ``{platform: {b: [Sp at each core count]}}``."""
    policy = CollaborativePolicy(partition_threshold=None)
    results: Dict[str, Dict[int, List[float]]] = {}
    for profile in platforms:
        per_b: Dict[int, List[float]] = {}
        for b in branch_counts:
            original = template_tree(
                b, num_cliques=num_cliques, clique_width=clique_width
            )
            new_root, _ = select_root(original)
            rerooted = reroot(original, new_root)
            graph_orig = build_task_graph(original)
            graph_new = build_task_graph(rerooted)
            speedups = []
            for p in cores:
                t_orig = policy.simulate(graph_orig, profile, p).makespan
                t_new = policy.simulate(graph_new, profile, p).makespan
                speedups.append(t_orig / t_new)
            per_b[b] = speedups
        results[profile.name] = per_b
    return results
