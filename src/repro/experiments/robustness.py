"""Seed-robustness of the headline reproduction.

The synthetic workloads are random; a reproduction resting on one lucky
seed would be fragile.  This experiment regenerates Junction tree 1 under
several seeds and reports the spread of the collaborative scheduler's
8-core speedup — the headline 7.4x should be a property of the workload
*class*, not of seed 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.jt.generation import paper_tree
from repro.jt.rerooting import reroot_optimally
from repro.simcore.policies import CollaborativePolicy
from repro.simcore.profiles import XEON, PlatformProfile
from repro.tasks.dag import build_task_graph


@dataclass
class RobustnessResult:
    seeds: List[int]
    speedups: List[float]

    @property
    def mean(self) -> float:
        return sum(self.speedups) / len(self.speedups)

    @property
    def spread(self) -> float:
        return max(self.speedups) - min(self.speedups)


def run_robustness(
    seeds: Sequence[int] = tuple(range(5)),
    cores: int = 8,
    which_tree: int = 1,
    profile: PlatformProfile = XEON,
) -> RobustnessResult:
    """Collaborative ``cores``-core speedup for each workload seed."""
    policy = CollaborativePolicy()
    speedups = []
    for seed in seeds:
        tree, _, _ = reroot_optimally(paper_tree(which_tree, seed=seed))
        graph = build_task_graph(tree)
        base = policy.simulate(graph, profile, 1).makespan
        speedups.append(
            base / policy.simulate(graph, profile, cores).makespan
        )
    return RobustnessResult(list(seeds), speedups)
