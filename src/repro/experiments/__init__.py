"""Experiment runners that regenerate every figure of the paper's evaluation.

Each ``run_figN`` function reproduces the corresponding figure's data series
using the synthetic workloads and the multicore simulator; formatting
helpers in :mod:`repro.experiments.tables` turn them into the text tables
printed by the benchmark harness and recorded in ``EXPERIMENTS.md``.
"""

from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.rerooting_cost import run_rerooting_cost
from repro.experiments.manycore import run_manycore
from repro.experiments.robustness import run_robustness
from repro.experiments.tables import format_series_table

__all__ = [
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_rerooting_cost",
    "run_manycore",
    "run_robustness",
    "format_series_table",
]
