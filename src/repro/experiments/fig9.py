"""Fig. 9: speedup of the proposed method under parameter sweeps.

Starting from junction tree 1 (N=512, w_C=20, r=2, k=4) the paper varies
one parameter at a time: (a) the number of cliques N, (b) the clique width
w_C, (c) the number of states r, and (d) the average number of children k.
All configurations scale almost linearly except small potential tables
(w_C=10, r=2), where per-task scheduling overhead dominates the ~1024-entry
tables.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.jt.generation import synthetic_tree
from repro.jt.rerooting import reroot_optimally
from repro.simcore.policies import CollaborativePolicy
from repro.simcore.profiles import XEON, PlatformProfile
from repro.tasks.dag import build_task_graph

# JT1's parameters, the sweep baseline.
BASE = {"num_cliques": 512, "clique_width": 20, "states": 2, "avg_children": 4}

SWEEPS: Dict[str, Tuple[str, Sequence]] = {
    "a: number of cliques N": ("num_cliques", (128, 256, 512, 1024)),
    "b: clique width w_C": ("clique_width", (10, 15, 20)),
    "c: number of states r": ("states", (2, 3)),
    "d: avg children k": ("avg_children", (2, 4, 8)),
}


def _speedups(
    params: Dict, cores: Sequence[int], profile: PlatformProfile, seed: int
) -> List[float]:
    tree = synthetic_tree(seed=seed, **params)
    tree, _, _ = reroot_optimally(tree)
    graph = build_task_graph(tree)
    policy = CollaborativePolicy()
    base = policy.simulate(graph, profile, 1).makespan
    return [base / policy.simulate(graph, profile, p).makespan for p in cores]


def run_fig9(
    cores: Sequence[int] = (1, 2, 4, 8),
    profile: PlatformProfile = XEON,
    seed: int = 0,
    panels: Sequence[str] = tuple(SWEEPS),
) -> Dict[str, Dict[str, List[float]]]:
    """``{panel: {"param=value": [speedup per core count]}}``.

    Panel (c) sweeps the state count at width 10 (the paper's small-table
    regime) so the r=2 row exposes the overhead-dominated case the text
    calls out.
    """
    results: Dict[str, Dict[str, List[float]]] = {}
    for panel in panels:
        param, values = SWEEPS[panel]
        rows: Dict[str, List[float]] = {}
        for value in values:
            params = dict(BASE)
            params[param] = value
            if param == "states":
                # r = 3 at width 20 is astronomically large; the paper's
                # state sweep is read against the small-table finding, so
                # sweep r at the width-10 configuration.
                params["clique_width"] = 10
            rows[f"{param}={value}"] = _speedups(params, cores, profile, seed)
        results[panel] = rows
    return results
