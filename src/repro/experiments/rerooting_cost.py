"""Section 7's rerooting-overhead measurements.

The paper reports that rerooting a 512-clique junction tree took 24 µs
against an overall execution time five orders larger, and that Algorithm 1
is ``O(w_C N)`` versus the straightforward method's ``O(w_C N^2)``.  We
measure real wall-clock of both root-selection implementations at several
tree sizes and the ratio of rerooting time to (simulated) propagation time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Sequence

from repro.jt.generation import synthetic_tree
from repro.jt.rerooting import select_root, select_root_bruteforce
from repro.simcore.policies import CollaborativePolicy
from repro.simcore.profiles import OPTERON
from repro.tasks.dag import build_task_graph


@dataclass
class RerootingCostResult:
    """Wall-clock of both root selectors plus the overhead fraction.

    ``fast_seconds`` / ``brute_seconds`` are real Python wall-clock times
    (used for the O(N) vs O(N^2) scaling claim).  ``modeled_fraction``
    compares the *modeled* cost of Algorithm 1 (``w_C * N`` operations on
    the simulated platform) to the simulated propagation makespan — the
    apples-to-apples version of the paper's "24 µs out of the overall
    execution time" observation.
    """

    fast_seconds: Dict[int, float] = field(default_factory=dict)
    brute_seconds: Dict[int, float] = field(default_factory=dict)
    modeled_fraction: Dict[int, float] = field(default_factory=dict)


def _time(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_rerooting_cost(
    sizes: Sequence[int] = (64, 128, 256, 512),
    clique_width: int = 15,
    seed: int = 0,
) -> RerootingCostResult:
    result = RerootingCostResult()
    for n in sizes:
        tree = synthetic_tree(
            n, clique_width=clique_width, states=2, avg_children=4, seed=seed
        )
        result.fast_seconds[n] = _time(lambda: select_root(tree))
        result.brute_seconds[n] = _time(lambda: select_root_bruteforce(tree))
        graph = build_task_graph(tree)
        propagation = CollaborativePolicy().simulate(graph, OPTERON, 8)
        modeled_cost = clique_width * n / OPTERON.flops_per_second
        result.modeled_fraction[n] = modeled_cost / max(
            propagation.makespan, 1e-12
        )
    return result
