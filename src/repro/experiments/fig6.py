"""Fig. 6: scalability of PNL-style centralized exact inference.

The paper ran Intel PNL's parallel junction-tree inference on an IBM P655
multiprocessor and observed execution time *increasing* beyond 4
processors.  We reproduce the experiment with the centralized scheduling
policy (serial dispatcher whose per-task coordination cost grows with both
processor count and message size) on the P655-like platform profile, over
junction trees 1-3.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.jt.generation import paper_tree
from repro.jt.rerooting import reroot_optimally
from repro.simcore.policies import CentralizedPolicy
from repro.simcore.profiles import IBM_P655, PlatformProfile
from repro.tasks.dag import build_task_graph


def run_fig6(
    trees: Sequence[int] = (1, 2, 3),
    processors: Sequence[int] = (1, 2, 4, 6, 8),
    profile: PlatformProfile = IBM_P655,
    seed: int = 0,
) -> Dict[str, List[float]]:
    """Execution times: ``{"Junction tree N": [seconds per proc count]}``."""
    policy = CentralizedPolicy()
    results: Dict[str, List[float]] = {}
    for which in trees:
        tree, _, _ = reroot_optimally(paper_tree(which, seed=seed))
        graph = build_task_graph(tree)
        times = [
            policy.simulate(graph, profile, p).makespan for p in processors
        ]
        results[f"Junction tree {which}"] = times
    return results
