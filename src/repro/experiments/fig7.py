"""Fig. 7: scalability of the three parallel methods on both platforms.

For junction trees 1-3 and both x86 platform profiles, we simulate the
OpenMP baseline, the data-parallel baseline and the proposed collaborative
scheduler at 1-8 cores and report speedup over each method's own
single-core run (as the paper plots it).

Headline checks: the proposed method is near-linear (7.4x on Xeon / 7.1x
on Opteron at 8 cores on JT1) and roughly 2x the baselines.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.jt.generation import paper_tree
from repro.jt.rerooting import reroot_optimally
from repro.simcore.policies import (
    CollaborativePolicy,
    DataParallelPolicy,
    OpenMPPolicy,
)
from repro.simcore.profiles import OPTERON, XEON, PlatformProfile
from repro.tasks.dag import build_task_graph

METHODS = {
    "openmp": OpenMPPolicy,
    "data-parallel": DataParallelPolicy,
    "collaborative": CollaborativePolicy,
}


def run_fig7(
    trees: Sequence[int] = (1, 2, 3),
    cores: Sequence[int] = (1, 2, 4, 8),
    platforms: Sequence[PlatformProfile] = (XEON, OPTERON),
    seed: int = 0,
) -> Dict[str, Dict[str, List[float]]]:
    """Speedups: ``{platform: {"JTn/method": [speedup per core count]}}``."""
    results: Dict[str, Dict[str, List[float]]] = {}
    graphs = {}
    for which in trees:
        tree, _, _ = reroot_optimally(paper_tree(which, seed=seed))
        graphs[which] = build_task_graph(tree)
    for profile in platforms:
        rows: Dict[str, List[float]] = {}
        for which in trees:
            graph = graphs[which]
            for name, policy_cls in METHODS.items():
                policy = policy_cls()
                base = policy.simulate(graph, profile, 1).makespan
                rows[f"JT{which}/{name}"] = [
                    base / policy.simulate(graph, profile, p).makespan
                    for p in cores
                ]
        results[profile.name] = rows
    return results
