"""Plain-text table formatting for experiment output."""

from __future__ import annotations

from typing import Dict, Sequence


def format_series_table(
    title: str,
    column_header: str,
    columns: Sequence,
    rows: Dict[str, Sequence[float]],
    fmt: str = "{:.2f}",
) -> str:
    """Render ``rows`` (label -> values per column) as an aligned table.

    ``columns`` typically holds core counts; each row is one curve of the
    figure being reproduced.
    """
    label_width = max(
        [len(column_header)] + [len(str(label)) for label in rows]
    )
    col_cells = [str(c) for c in columns]
    value_rows = {
        label: [fmt.format(v) for v in values] for label, values in rows.items()
    }
    col_widths = [
        max([len(col_cells[i])] + [len(vals[i]) for vals in value_rows.values()])
        for i in range(len(columns))
    ]
    lines = [title]
    header = column_header.ljust(label_width) + "  " + "  ".join(
        c.rjust(w) for c, w in zip(col_cells, col_widths)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for label, vals in value_rows.items():
        lines.append(
            str(label).ljust(label_width)
            + "  "
            + "  ".join(v.rjust(w) for v, w in zip(vals, col_widths))
        )
    return "\n".join(lines)
