#!/usr/bin/env python
"""Generate EXPERIMENTS.md from the recorded benchmark tables.

Run after ``pytest benchmarks/ --benchmark-only`` (which writes the tables
to ``benchmarks/results/``):

    python tools/make_experiments_md.py
"""

from __future__ import annotations

import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = ROOT / "benchmarks" / "results"

HEADER = """\
# EXPERIMENTS — paper vs measured

Every figure of the paper's evaluation (Section 7), reproduced by
`pytest benchmarks/ --benchmark-only`.  Absolute times are *simulated*
seconds on the calibrated platform profiles (the authors' 2009 testbeds
are gone); the comparison is about **shape**: who wins, by what factor,
and where the crossovers fall.  Each benchmark asserts the shape claims
below, so a regression fails the suite.

The numbers in this file were produced by the benchmark run recorded in
`benchmarks/results/` (regenerate with `python tools/make_experiments_md.py`).
"""

SECTIONS = [
    (
        "Fig. 5 — speedup from junction-tree rerooting",
        ["fig5_xeon", "fig5_opteron"],
        """\
**Paper:** on Fig. 4 template trees (512 cliques, width 15, binary;
``b + 1`` equal branches rooted at the far end of branch 0), rerooting at
the junction clique gives ``Sp = t_original / t_rerooted`` up to 2; with 8
threads the ``b <= 4`` trees reach ~1.9, and larger ``b`` needs more
threads to reach the maximum.  Task partitioning disabled.

**Measured:** identical shape — Sp = 1 at one core, rises to ~1.98-1.99
once the core count exceeds ``b``, and the ``b = 8`` tree is still
climbing at 8 cores (1.77).  The rerooted root found by Algorithm 1 is
the junction clique in every configuration, matching the paper's
"clique R became the new root".""",
    ),
    (
        "Fig. 6 — PNL-style centralized inference",
        ["fig6_pnl"],
        """\
**Paper:** Intel PNL's parallel junction-tree inference on an IBM P655
multiprocessor slows down beyond 4 processors for all three junction
trees (execution time *increases* when P > 4).

**Measured:** the centralized policy (serial dispatcher, coordination
cost growing with both processor count and message size) reproduces the
U-shape: JT1 bottoms out at 4 processors and is ~77% slower again at 8;
JT2 bottoms at 4-6 and rises at 8; tiny JT3 is dispatch-bound even
earlier.  The paper's qualitative claim — more processors eventually
hurt a centralized scheduler — holds throughout.""",
    ),
    (
        "Fig. 7 — scalability of the three methods",
        ["fig7_xeon", "fig7_opteron"],
        """\
**Paper:** on both platforms the proposed collaborative scheduler shows
linear speedup — 7.4x (Xeon) and 7.1x (Opteron) at 8 cores — versus
~2.1x better than the OpenMP baseline and ~1.8x better than the
data-parallel method.

**Measured:** collaborative reaches 7.48 (Xeon) / 7.24 (Opteron) on JT1;
the OpenMP baseline saturates near 3.2 (ratio 2.3x) and the
data-parallel baseline near 3.8 on JT1 (ratio 1.9-2.0x).  The baselines
flatten from 4 to 8 cores while the proposed method keeps scaling —
the paper's central claim.  JT3 (width 10) scales worst for the
per-primitive baselines, consistent with the paper's overhead analysis.""",
    ),
    (
        "Fig. 8 — load balance and scheduling overhead",
        ["fig8_load_balance"],
        """\
**Paper:** per-thread computation times on JT1 (Opteron) are nearly
equal at every thread count, and scheduling takes less than 0.9 % of the
execution time.

**Measured:** per-thread compute times agree to three decimal places
(max/mean imbalance <= 1.003 at 8 threads); the scheduling-overhead ratio
grows mildly with thread count (lock contention) but stays at 0.60 % at
8 threads — under the paper's 0.9 % bound, with the same rising trend
the paper shows.""",
    ),
    (
        "Fig. 9 — parameter sweeps around Junction tree 1",
        ["fig9a", "fig9b", "fig9c", "fig9d"],
        """\
**Paper:** varying N (cliques), w_C (width), r (states) and k (children)
around JT1, all configurations show linear speedup above 7 at 8 cores —
except small potential tables (w_C = 10, r = 2, i.e. 1024 entries), where
scheduling overheads are relatively large.

**Measured:** N sweep all >= 7.4; k sweep all >= 7.4; width sweep reaches
7.5 at w = 20 but only ~4.8 at w = 10 with r = 2 (the paper's called-out
small-table case); raising r to 3 at width 10 restores ~7.1.  Same
winners, same outlier, same reason.""",
    ),
    (
        "Section 7 text — rerooting cost",
        ["rerooting_cost"],
        """\
**Paper:** rerooting a 512-clique tree took 24 µs against an overall
execution time of ~milliseconds (negligible), and Algorithm 1 is
O(w_C N) versus the straightforward O(w_C N^2) approach.

**Measured:** the brute-force/Algorithm-1 wall-clock ratio grows from
~24x at N = 64 to ~200x at N = 512 (the extra factor of N), and the
modeled rerooting cost is < 0.02 % of the simulated propagation
makespan — negligible, as the paper reports.""",
    ),
    (
        "Ablations (beyond the paper)",
        [
            "ablation_partition_threshold",
            "ablation_rerooting",
            "ablation_fetch_priority",
            "ablation_lock_contention",
            "ablation_allocation",
        ],
        """\
Design-choice ablations called out in DESIGN.md: the partition threshold
δ (off / coarse / default / fine), rerooting under the full scheduler,
the Fetch-module ordering (FIFO vs critical-path-first), lock-contention
overhead (shared-lock vs work-stealing), and the Allocate-module
heuristic in the real threaded executor.""",
    ),
    (
        "Extensions (beyond the paper)",
        ["extension_cluster_vs_shared", "extension_manycore",
         "robustness_seeds"],
        """\
Two projections of the paper's argument: (1) the same task graph on a
message-passing cluster (the related-work platform) scales clearly below
shared memory — the paper's motivation quantified; (2) extrapolating the
calibrated model to 64 cores on a fine-grained workload shows the
shared-lock scheduler capping and then degrading while the Section 8
work-stealing remedy keeps scaling.  A seed sweep confirms the headline
speedup is a property of the workload class, not of one lucky seed.""",
    ),
]


def main() -> int:
    if not RESULTS.exists():
        print(
            "no benchmarks/results/ directory; run "
            "`pytest benchmarks/ --benchmark-only` first",
            file=sys.stderr,
        )
        return 1
    parts = [HEADER]
    for title, names, commentary in SECTIONS:
        parts.append(f"\n## {title}\n")
        parts.append(commentary + "\n")
        for name in names:
            path = RESULTS / f"{name}.txt"
            if path.exists():
                parts.append("```\n" + path.read_text().rstrip() + "\n```\n")
            else:
                parts.append(f"*(missing: {name}.txt — rerun benchmarks)*\n")
    (ROOT / "EXPERIMENTS.md").write_text("\n".join(parts))
    print(f"wrote {ROOT / 'EXPERIMENTS.md'}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
