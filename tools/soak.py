#!/usr/bin/env python
"""Deterministic chaos soak for the concurrent inference service.

Replays a seeded multi-client request schedule against a live
:class:`repro.serve.InferenceService` under injected faults and asserts
the service's one non-negotiable invariant: **every response is either
exact (marginals match a fresh serial-oracle propagation to 1e-9) or an
explicit refusal** (shed / stale / deadline / failed) — never a silently
corrupted posterior.

Six phases:

* **Phase A — thread storm.**  Many client threads hammer a small
  admission queue with mixed deadlines, priorities and staleness
  tolerances: exercises overload shedding, request coalescing, stale
  serving and end-to-end deadline enforcement.  No faults are injected,
  so zero ``failed`` responses are tolerated.
* **Phase B — process chaos.**  A breaker-guarded process-executor
  primary suffers a seeded :class:`~repro.sched.faults.FaultPlan`
  (worker kill, task delay + timeout, table corruption) plus an induced
  outage window that must open the circuit breaker; after the outage the
  half-open probe must recover it.  Every exact answer served *during*
  the chaos is still checked against the oracle.
* **Phase C — micro-batch chaos.**  One worker with ``max_batch=4`` and
  a burst-submitting client swarm, so queued flights ride batched
  propagations, under a fault plan that adds a *torn write* on top of
  kill/delay/NaN: the checksum layer must refuse the torn result, the
  poisoned session must recycle from its baseline checkpoint, and every
  batched answer must still match the oracle.
* **Phase E — streaming chaos.**  Concurrent
  :class:`repro.serve.StreamingService` filtering streams whose
  executors suffer seeded kills (including during recovery rebuilds and
  window rolls) while burst producers overflow the tiny per-stream tick
  queues.  Every ``ok`` tick's posterior must equal the offline
  unrolled-network oracle over *that stream's* applied ticks — exact
  filtering under chaos and zero cross-stream contamination — refused
  ticks must never advance a stream's clock, and zero responses may be
  lost.
* **Phase D — multi-model chaos.**  Mixed-tenant bursts across four
  registered models routed through a
  :class:`repro.registry.RegistryService`, under a memory budget tight
  enough to force LRU evictions (and rehydrations) mid-storm, plus one
  injected poisoned session that must recycle from its baseline
  checkpoint.  Every ``ok`` answer must match *its own model's* oracle
  (no cross-model contamination), quota/compile-deadline refusals must
  be typed, and zero responses may be lost.
* **Phase F — process crash + journal recovery.**  A real child serving
  process (:mod:`repro.durability.harness`) is ``SIGKILL``'d
  mid-traffic, twice, against one durable root — with a deliberately
  torn journal tail injected between incarnations.  Every acked tick
  must survive into the recovered state, every acked posterior must
  match the offline unrolled oracle at 1e-9, no seq may be acked by two
  incarnations, and the torn tail must be truncated, never parsed.

Exit status 0 when every invariant holds, 1 otherwise.  The schedule is
fully determined by ``--seed``; timing-dependent *outcomes* (how many
requests shed vs served) vary run to run, the invariants do not.

Usage::

    PYTHONPATH=src python tools/soak.py --seed 0 --duration 10
"""

from __future__ import annotations

import argparse
import os
import random
import shutil
import sys
import threading
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import InferenceEngine, random_network
from repro.jt.build import junction_tree_from_network
from repro.registry import ModelRegistry, RegistryService, TenantScheduler
from repro.sched.collaborative import CollaborativeExecutor
from repro.sched.faults import FaultPlan
from repro.sched.process import ProcessSharedMemoryExecutor
from repro.sched.serial import SerialExecutor
from repro.serve import (
    CircuitBreaker,
    EngineSessionPool,
    InferenceService,
    QueryRequest,
    QueryResponse,
)

ATOL = 1e-9


class Oracle:
    """Fresh serial reference answers, memoized per evidence signature."""

    def __init__(self, bn):
        self.engine = InferenceEngine.from_network(bn)
        self._memo: Dict[Tuple, Dict[int, np.ndarray]] = {}

    def marginals(self, request: QueryRequest) -> Dict[int, np.ndarray]:
        evidence = request.evidence()
        sig = evidence.signature()
        if sig not in self._memo:
            self.engine.set_evidence(evidence)
            self.engine.propagate(SerialExecutor(), incremental=False)
            self._memo[sig] = self.engine.marginals_all()
        return self._memo[sig]


def verify_response(
    oracle: Oracle,
    request: QueryRequest,
    response: QueryResponse,
    failures: List[str],
    allow_failed: bool,
) -> None:
    """Check one response against the exact-or-explicit contract."""
    if response.status == "ok":
        exact = oracle.marginals(request)
        for var, values in response.marginals.items():
            if not np.all(np.isfinite(values)):
                failures.append(f"non-finite marginal for var {var}")
            elif not np.allclose(values, exact[var], atol=ATOL):
                failures.append(
                    f"SILENT CORRUPTION: var {var} served "
                    f"{values.tolist()} expected {exact[var].tolist()} "
                    f"(tier {response.executor})"
                )
    elif response.status == "stale":
        for var, values in response.marginals.items():
            if not np.all(np.isfinite(values)) or abs(values.sum() - 1) > 1e-6:
                failures.append(
                    f"stale marginal for var {var} is not a distribution"
                )
    elif response.status == "failed" and not allow_failed:
        failures.append(f"unexpected failure response: {response.error}")
    # shed / deadline are always-legal explicit refusals.


def run_clients(
    service: InferenceService,
    schedules: List[List[QueryRequest]],
    pauses: List[List[float]],
) -> List[Tuple[QueryRequest, QueryResponse]]:
    """Fire each client's schedule from its own thread; gather responses."""
    results: List[Tuple[QueryRequest, QueryResponse]] = []
    results_lock = threading.Lock()

    def client(cid: int) -> None:
        # Burst-submit, then collect: each client keeps many requests in
        # flight at once, which is what actually pressures admission.
        futures = []
        for request, pause in zip(schedules[cid], pauses[cid]):
            futures.append((request, service.submit(request)))
            if pause:
                time.sleep(pause)
        for request, future in futures:
            response = future.result(120.0)
            with results_lock:
                results.append((request, response))

    threads = [
        threading.Thread(target=client, args=(cid,), name=f"soak-client-{cid}")
        for cid in range(len(schedules))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return results


def make_schedule(
    rng: random.Random,
    num_vars: int,
    requests: int,
    tight_deadlines: bool,
) -> Tuple[List[QueryRequest], List[float]]:
    """One client's deterministic request stream (+ inter-request pauses)."""
    schedule: List[QueryRequest] = []
    pauses: List[float] = []
    for _ in range(requests):
        delta = {
            rng.randrange(num_vars): rng.randrange(2)
            for _ in range(rng.randrange(4))
        }
        vars_ = sorted(rng.sample(range(num_vars), rng.randrange(1, 4)))
        roll = rng.random()
        deadline: Optional[float] = 30.0
        staleness: Optional[float] = None
        if tight_deadlines and roll < 0.15:
            deadline = 1e-5  # unmeetable: must yield an explicit refusal
        elif roll < 0.40:
            staleness = 60.0  # overload-tolerant
        schedule.append(
            QueryRequest(
                delta=delta,
                vars=vars_,
                deadline=deadline,
                priority=rng.randrange(3),
                max_staleness=staleness,
            )
        )
        pauses.append(rng.choice([0.0, 0.0, 0.001, 0.002]))
    return schedule, pauses


def leak_check(before: set, failures: List[str]) -> None:
    import multiprocessing

    lingering = [
        t.name
        for t in threading.enumerate()
        if t.is_alive() and t.name not in before
    ]
    if lingering:
        failures.append(f"leaked threads after drain: {lingering}")
    children = multiprocessing.active_children()
    if children:
        failures.append(f"leaked worker processes: {children}")


def phase_a(seed: int, duration: float, clients: int, failures: List[str]):
    print(f"== phase A: thread storm ({clients} clients) ==")
    rng = random.Random(seed)
    num_vars = 28
    bn = random_network(num_vars, max_parents=3, edge_probability=0.6,
                        seed=seed)
    oracle = Oracle(bn)
    pool = EngineSessionPool.from_junction_tree(
        junction_tree_from_network(bn), sessions=4
    )
    threads_before = {t.name for t in threading.enumerate()}
    service = InferenceService(
        pool,
        fallback=CollaborativeExecutor(num_threads=2),
        max_queue=8,
        workers=4,
    )
    per_client = max(8, int(duration * 4))
    schedules, pauses = [], []
    for cid in range(clients):
        sched, pause = make_schedule(
            random.Random(rng.randrange(1 << 30)),
            num_vars,
            per_client,
            tight_deadlines=True,
        )
        schedules.append(sched)
        pauses.append(pause)

    results = run_clients(service, schedules, pauses)
    report = service.drain()
    for request, response in results:
        verify_response(oracle, request, response, failures,
                        allow_failed=False)
    leak_check(threads_before, failures)
    if report.served == 0:
        failures.append("phase A served nothing — storm setup is broken")
    if len(results) != clients * per_client:
        failures.append(
            f"lost responses: {len(results)} of {clients * per_client}"
        )
    print(report.format())
    return report


class _OutageWindow:
    """Primary-tier wrapper failing a contiguous window of run() calls.

    Simulates a persistently-broken worker pool without the cost of
    actually crashing one per request; the breaker cannot tell the
    difference (both are exceptions out of the primary tier).
    """

    def __init__(self, inner, fail_calls: int):
        self.inner = inner
        self.fail_calls = fail_calls
        self.calls = 0

    def run(self, graph, state, tracer=None, deadline=None):
        self.calls += 1
        if self.calls <= self.fail_calls:
            raise RuntimeError(
                f"induced primary outage (call {self.calls})"
            )
        return self.inner.run(graph, state, deadline=deadline)


def phase_b(seed: int, duration: float, failures: List[str]):
    print("== phase B: process chaos + circuit breaker ==")
    rng = random.Random(seed + 1)
    num_vars = 20
    bn = random_network(num_vars, max_parents=3, edge_probability=0.6,
                        seed=seed + 1)
    oracle = Oracle(bn)
    pool = EngineSessionPool.from_junction_tree(
        junction_tree_from_network(bn), sessions=2
    )
    threads_before = {t.name for t in threading.enumerate()}
    # Seeded one-shot faults inside the real process tier: a worker kill
    # (pool restart), a delayed task racing a short per-task timeout
    # (redispatch), and a corrupted output table (the service's health
    # guard must catch it and fall back — exactly, not approximately).
    plan = FaultPlan(
        kill_before_dispatch={2: 0},
        delay_task={0: 0.4},
        corrupt_task={1: "nan"},
    )
    primary = _OutageWindow(
        ProcessSharedMemoryExecutor(
            num_workers=2,
            inline_threshold=0,
            task_timeout=0.2,
            max_retries=2,
            fault_plan=plan,
        ),
        fail_calls=2,
    )
    breaker = CircuitBreaker(failure_threshold=2, reset_timeout=0.4)
    service = InferenceService(
        pool,
        primary=primary,
        fallback=CollaborativeExecutor(num_threads=2),
        breaker=breaker,
        max_queue=32,
        workers=2,
    )
    requests = max(6, int(duration))
    responses: List[Tuple[QueryRequest, QueryResponse]] = []
    for i in range(requests):
        delta = {rng.randrange(num_vars): rng.randrange(2)}
        vars_ = sorted(rng.sample(range(num_vars), 2))
        request = QueryRequest(delta=delta, vars=vars_, deadline=60.0)
        responses.append((request, service.submit(request).result(120.0)))

    # Recovery stage: the one-shot faults are spent, so once the open
    # window elapses a half-open probe must succeed and re-close the
    # breaker.  Each probe uses fresh evidence — a cache hit would skip
    # the tier cascade and never touch the primary.
    recovery_deadline = time.monotonic() + max(15.0, duration)
    probe_id = 0
    while breaker.state != "closed" and time.monotonic() < recovery_deadline:
        if breaker.state == "open":
            time.sleep(breaker.reset_timeout + 0.05)
        probe_id += 1
        request = QueryRequest(
            delta={probe_id % num_vars: (probe_id // num_vars) % 2,
                   (probe_id + 7) % num_vars: probe_id % 2},
            vars=[0],
            deadline=60.0,
        )
        responses.append((request, service.submit(request).result(120.0)))
    report = service.drain()

    for request, response in responses:
        verify_response(oracle, request, response, failures,
                        allow_failed=False)
    leak_check(threads_before, failures)
    opens = sum(1 for t in breaker.transitions if t.to_state == "open")
    if opens == 0:
        failures.append("induced outage never opened the breaker")
    if breaker.state != "closed":
        failures.append(
            f"breaker did not recover after the outage ({breaker.state})"
        )
    if not any(
        tier != "cache" for tier in report.tier_counts
    ):
        failures.append("phase B never propagated — chaos setup is broken")
    print(report.format())
    return report


def phase_c(seed: int, duration: float, failures: List[str]):
    print("== phase C: micro-batch chaos + torn write ==")
    rng = random.Random(seed + 2)
    num_vars = 18
    bn = random_network(num_vars, max_parents=3, edge_probability=0.6,
                        seed=seed + 2)
    oracle = Oracle(bn)
    pool = EngineSessionPool.from_junction_tree(
        junction_tree_from_network(bn), sessions=1
    )
    threads_before = {t.name for t in threading.enumerate()}
    # Kill/delay/NaN as in phase B, plus a torn write: the worker stamps
    # a correct checksum and then scribbles finite garbage — only the
    # crc verification can catch it, and the session it poisoned must be
    # recycled from the pool's baseline checkpoint, never reused as-is.
    plan = FaultPlan(
        kill_before_dispatch={3: 0},
        delay_task={0: 0.2},
        corrupt_task={1: "nan"},
        torn_write={2: 4},
    )
    primary = ProcessSharedMemoryExecutor(
        num_workers=2,
        inline_threshold=0,
        task_timeout=5.0,
        max_retries=2,
        fault_plan=plan,
    )
    service = InferenceService(
        pool,
        primary=primary,
        fallback=CollaborativeExecutor(num_threads=2),
        breaker=CircuitBreaker(failure_threshold=3, reset_timeout=0.3),
        max_queue=64,
        workers=1,
        max_batch=4,
        watchdog_grace=5.0,
    )
    per_client = max(6, int(duration * 2))
    clients = 4
    schedules, pauses = [], []
    for cid in range(clients):
        sched, _ = make_schedule(
            random.Random(rng.randrange(1 << 30)),
            num_vars,
            per_client,
            tight_deadlines=False,
        )
        schedules.append(sched)
        # Pure burst: no pauses, so flights pile up behind the single
        # worker and get drained into micro-batches.
        pauses.append([0.0] * len(sched))

    results = run_clients(service, schedules, pauses)
    report = service.drain()
    for request, response in results:
        # A quarantined batch case is an explicit, legal failure.
        verify_response(oracle, request, response, failures,
                        allow_failed=True)
    leak_check(threads_before, failures)
    if report.batches == 0:
        failures.append(
            "phase C never micro-batched — burst setup is broken"
        )
    if report.session_recycles < 1:
        failures.append(
            "torn write never triggered a session recycle "
            f"(recycles={report.session_recycles})"
        )
    if len(results) != clients * per_client:
        failures.append(
            f"lost responses: {len(results)} of {clients * per_client}"
        )
    print(report.format())
    return report


def phase_d(seed: int, duration: float, failures: List[str]):
    print("== phase D: multi-model chaos (registry) ==")
    rng = random.Random(seed + 3)
    num_vars = 16
    model_ids = ["m0", "m1", "m2", "m3"]
    networks = {
        mid: random_network(
            num_vars, max_parents=3, edge_probability=0.6, seed=seed + 3 + i
        )
        for i, mid in enumerate(model_ids)
    }
    oracles = {mid: Oracle(bn) for mid, bn in networks.items()}

    # Probe each model's true resident cost, then set a budget that can
    # hold roughly 60% of the fleet: the storm *must* evict.
    probe = ModelRegistry(sessions=2, cache_size=64)
    for mid, bn in networks.items():
        probe.register(mid, network=bn)
    costs = {mid: probe.acquire(mid).cost_bytes for mid in model_ids}
    probe.close()
    budget = int(sum(costs.values()) * 0.6)

    threads_before = {t.name for t in threading.enumerate()}
    registry = ModelRegistry(
        memory_budget=budget,
        sessions=2,
        cache_size=64,
        max_queue=16,
        workers=2,
    )
    for mid, bn in networks.items():
        registry.register(mid, network=bn)
    service = RegistryService(
        registry, scheduler=TenantScheduler(capacity=24, burst_factor=2.0)
    )

    tenants = ["acme", "globex", "initech"]
    clients = 6
    per_client = max(8, int(duration * 2))
    schedules, pauses = [], []
    for cid in range(clients):
        crng = random.Random(rng.randrange(1 << 30))
        sched = []
        for _ in range(per_client):
            delta = {
                crng.randrange(num_vars): crng.randrange(2)
                for _ in range(crng.randrange(3))
            }
            vars_ = sorted(crng.sample(range(num_vars), crng.randrange(1, 3)))
            sched.append(
                QueryRequest(
                    delta=delta,
                    vars=vars_,
                    deadline=60.0,
                    priority=crng.randrange(3),
                    model_id=crng.choice(model_ids),
                    tenant=tenants[cid % len(tenants)],
                )
            )
        schedules.append(sched)
        pauses.append([crng.choice([0.0, 0.0, 0.001]) for _ in sched])

    # Mid-storm poison injection: scribble NaNs over one resident
    # session's state and flag it — the pool must recycle it from the
    # baseline checkpoint before any flight sees the garbage.
    injected = threading.Event()

    def inject_poison():
        deadline = time.monotonic() + 30.0
        while not injected.is_set() and time.monotonic() < deadline:
            time.sleep(0.05)
            for mid in registry.resident_models():
                entry = registry._entries.get(mid)
                pool = entry.pool if entry is not None else None
                if pool is None or pool.closed:
                    continue
                try:
                    with pool.session(timeout=0.5) as engine:
                        for table in engine._state.potentials.values():
                            table.values[...] = np.nan
                        pool.note_failure(
                            engine, "soak-injected poison", poisoned=True
                        )
                    injected.set()
                    return
                except Exception:
                    continue  # evicted underneath us: try another model

    injector = threading.Thread(target=inject_poison, name="soak-injector")
    injector.start()
    results = run_clients(service, schedules, pauses)
    injector.join(timeout=60.0)
    report = service.drain()

    for request, response in results:
        mid = response.model_id or request.model_id
        if response.status in ("ok", "stale") and mid != request.model_id:
            failures.append(
                f"CROSS-MODEL ROUTING: asked {request.model_id}, "
                f"answered by {mid}"
            )
            continue
        verify_response(
            oracles[request.model_id], request, response, failures,
            allow_failed=False,
        )
    leak_check(threads_before, failures)
    expected = clients * per_client
    if len(results) != expected:
        failures.append(
            f"lost responses: {len(results)} of {expected}"
        )
    if not injected.is_set():
        failures.append("poison injection never landed on a live session")
    if report.session_recycles_from_checkpoint < 1:
        failures.append(
            "injected poison never recycled from checkpoint "
            f"(recycles={report.session_recycles})"
        )
    if report.evictions < 1:
        failures.append(
            f"budget {budget} never forced an eviction — "
            "pressure setup is broken"
        )
    if report.served == 0:
        failures.append("phase D served nothing — registry setup is broken")
    print(report.format())
    return report


class _StreamChaosExecutor:
    """Serial executor that fails seeded run() calls (streaming "kills").

    The first call (the session's build propagation) always succeeds so
    every stream subscribes; after that, each propagation fails with the
    seeded probability — including recovery rebuilds, so the session's
    dirty-resync retry path gets exercised too.
    """

    def __init__(self, seed: int, rate: float = 0.25):
        self.inner = SerialExecutor()
        self.rng = random.Random(seed)
        self.rate = rate
        self.calls = 0
        self.kills = 0

    def run(self, graph, state, **kw):
        self.calls += 1
        if self.calls > 1 and self.rng.random() < self.rate:
            self.kills += 1
            raise RuntimeError("soak-injected executor kill")
        return self.inner.run(graph, state, **kw)


def phase_e(seed: int, duration: float, failures: List[str]):
    print("== phase E: streaming chaos (kills + overflow) ==")
    from repro.bn.dbn import make_hmm
    from repro.serve import StreamingService

    rng = random.Random(seed + 4)
    np_rng = np.random.default_rng(seed + 4)

    def stochastic(shape, axis=-1):
        table = np_rng.random(shape) + 0.1
        return table / table.sum(axis=axis, keepdims=True)

    states, observations = 3, 4
    dbn = make_hmm(
        states,
        observations,
        initial=stochastic(states, axis=0),
        transition=stochastic((states, states)),
        emission=stochastic((states, observations)),
    )

    threads_before = {t.name for t in threading.enumerate()}
    injected: List[_StreamChaosExecutor] = []

    def chaos_executor():
        executor = _StreamChaosExecutor(rng.randrange(1 << 30))
        injected.append(executor)
        return executor

    # Tiny pending queues + burst producers: overflow refusals are part
    # of the plan, not an accident.
    service = StreamingService(
        dbn,
        window=4,
        retire=2,
        workers=3,
        max_pending=2,
        executor_factory=chaos_executor,
    )
    streams = 4
    ticks = max(12, int(duration * 3))
    handles = [
        service.subscribe(name=f"chaos-{i}", query_vars=[0])
        for i in range(streams)
    ]
    schedules = {
        handle.name: [
            {}
            if rng.random() < 0.1
            else {1: rng.randrange(observations)}
            for _ in range(ticks)
        ]
        for handle in handles
    }

    responses: Dict[str, List] = {handle.name: [] for handle in handles}
    lock = threading.Lock()

    def producer(handle) -> None:
        futures = []
        for i, delta in enumerate(schedules[handle.name]):
            futures.append(service.push_tick(handle, dict(delta)))
            if i % 3 == 2:
                time.sleep(0.002)  # let the queue breathe between bursts
        collected = [f.result(120.0) for f in futures]
        with lock:
            responses[handle.name] = collected

    producers = [
        threading.Thread(target=producer, args=(h,), name=f"soak-{h.name}")
        for h in handles
    ]
    for t in producers:
        t.start()
    for t in producers:
        t.join()
    report = service.drain()

    # Per-stream oracle replay: every ok tick's posterior must equal the
    # offline unrolled network over THAT stream's applied ticks — exact
    # filtering under chaos and zero cross-stream contamination (the
    # schedules differ, so a leaked posterior cannot match).
    for handle in handles:
        got = responses[handle.name]
        if len(got) != ticks:
            failures.append(
                f"lost responses on {handle.name}: {len(got)} of {ticks}"
            )
            continue
        applied = [
            schedules[handle.name][i]
            for i, response in enumerate(got)
            if response.ok
        ]
        ok_seen = 0
        for i, response in enumerate(got):
            if not response.ok:
                if response.status not in ("shed", "deadline", "failed"):
                    failures.append(
                        f"{handle.name}: unexpected status "
                        f"{response.status!r}"
                    )
                continue
            if response.t != ok_seen:
                failures.append(
                    f"{handle.name}: ok tick #{ok_seen} reported "
                    f"t={response.t} — refused ticks advanced time"
                )
            ok_seen += 1
            engine = InferenceEngine.from_network(dbn.unroll(ok_seen))
            for ti, delta in enumerate(applied[:ok_seen]):
                for v, state in delta.items():
                    engine.observe(dbn.variable_at(v, ti), int(state))
            engine.propagate(SerialExecutor(), incremental=False)
            exact = engine.marginal(dbn.variable_at(0, ok_seen - 1))
            if not np.allclose(response.marginals[0], exact, atol=ATOL):
                failures.append(
                    f"CROSS-STREAM CONTAMINATION or drift: "
                    f"{handle.name} tick t={response.t} served "
                    f"{response.marginals[0].tolist()} expected "
                    f"{exact.tolist()}"
                )
    leak_check(threads_before, failures)
    kills = sum(e.kills for e in injected)
    if kills == 0:
        failures.append("phase E injected no executor kills — chaos "
                        "setup is broken")
    if report.ticks_failed == 0:
        failures.append("injected kills produced no failed ticks")
    if report.ticks_overflowed == 0:
        failures.append(
            "burst producers never overflowed a tick queue — "
            "backpressure not engaging"
        )
    if report.ticks_ok == 0:
        failures.append("phase E served nothing — chaos drowned the soak")
    print(f"(injected {kills} executor kills across "
          f"{len(injected)} streams)")
    print(report.format())
    return report


def phase_f(seed: int, duration: float, failures: List[str]):
    """SIGKILL a real child serving process mid-traffic; verify recovery.

    Two kill cycles plus a clean finish against one durable root:

    * every acked tick's posterior must equal the offline unrolled
      oracle at 1e-9 (exactness survives the crash),
    * every acked seq must be applied in the recovered state (no acked
      tick lost — the write-ahead journal held),
    * no seq may be acked by two incarnations (no double-ack),
    * a deliberately torn journal tail must be truncated, not trusted.
    """
    print("== phase F: process crash + journal recovery (SIGKILL) ==")
    import tempfile

    from repro.durability import harness

    ticks = max(12, int(duration * 2))
    root = tempfile.mkdtemp(prefix="soak-phase-f-")
    dbn = harness.build_demo_dbn(seed)
    schedule = harness.build_schedule(seed, ticks)

    all_acked: Dict[int, List[float]] = {}

    def record_acks(acks, cycle: str) -> None:
        for ack in acks:
            seq = int(ack["seq"])
            if seq in all_acked:
                failures.append(
                    f"phase F {cycle}: seq {seq} acked twice across "
                    f"incarnations — double-ack"
                )
            all_acked[seq] = ack["m"]

    # Cycle 1: kill after ~1/3 of the schedule.
    proc = harness.spawn_child(root, seed, ticks)
    acks, recovered, done = harness.read_acks(proc, count=max(3, ticks // 3))
    harness.kill_child(proc)
    if done or not acks:
        failures.append(
            f"phase F cycle 1: expected a mid-traffic kill, got "
            f"done={done} acks={len(acks)}"
        )
    failures.extend(harness.verify_acks(dbn, schedule, acks))
    record_acks(acks, "cycle 1")
    killed_at = len(all_acked)

    # Deliberately tear the journal tail: append half a record's worth
    # of garbage after the kill.  Recovery must cut it, not parse it.
    import glob

    segments = sorted(
        glob.glob(os.path.join(root, "streams", harness.STREAM_NAME, "*.wal"))
    )
    if segments:
        with open(segments[-1], "ab") as handle:
            handle.write(b"\xc4W\xff\xff")  # magic + torn length field
    else:
        failures.append("phase F: no journal segments on disk after kill")

    # Cycle 2: recover, kill again after a few more acks.
    proc = harness.spawn_child(root, seed, ticks)
    acks, recovered, done = harness.read_acks(proc, count=3)
    harness.kill_child(proc)
    if recovered is None:
        failures.append("phase F cycle 2: child reported no recovery")
    else:
        applied = set(recovered["applied_seqs"]) | set(
            range(
                int(recovered["final_t"]) - len(recovered["applied_seqs"])
            )
        )
        lost = {s for s in all_acked if s < killed_at} - applied
        if lost:
            failures.append(
                f"phase F cycle 2: acked seqs {sorted(lost)} missing from "
                f"the recovered state — acked ticks LOST"
            )
        if recovered["torn_bytes"] <= 0:
            failures.append(
                "phase F cycle 2: injected torn tail was not truncated "
                f"(torn_bytes={recovered['torn_bytes']})"
            )
    failures.extend(harness.verify_acks(dbn, schedule, acks))
    record_acks(acks, "cycle 2")

    # Cycle 3: run to completion.
    proc = harness.spawn_child(root, seed, ticks)
    acks, recovered, done = harness.read_acks(proc, timeout=120.0)
    proc.wait()
    if not done:
        failures.append("phase F cycle 3: child never finished cleanly")
    failures.extend(harness.verify_acks(dbn, schedule, acks))
    record_acks(acks, "cycle 3")
    if done and len(all_acked) != ticks:
        failures.append(
            f"phase F: {len(all_acked)} of {ticks} ticks acked across "
            f"all incarnations — schedule did not complete exactly once"
        )
    shutil.rmtree(root, ignore_errors=True)
    print(
        f"(killed 2 children; {len(all_acked)}/{ticks} ticks acked "
        f"exactly once, all exact at 1e-9)"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--duration",
        type=float,
        default=10.0,
        help="approximate time budget in seconds; scales request counts",
    )
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument(
        "--skip-process",
        action="store_true",
        help="skip phases B and C (no process pools; fast smoke for CI)",
    )
    parser.add_argument(
        "--phases",
        default=None,
        metavar="LETTERS",
        help="run only these phases, e.g. AE or E (default: all, "
        "minus B/C under --skip-process)",
    )
    args = parser.parse_args(argv)

    if args.phases is not None:
        selected = set(args.phases.upper())
        unknown = selected - set("ABCDEF")
        if unknown:
            parser.error(f"unknown phases: {''.join(sorted(unknown))}")
    else:
        selected = set("ABCDEF")
        if args.skip_process:
            selected -= set("BC")

    failures: List[str] = []
    started = time.monotonic()
    if "A" in selected:
        phase_a(args.seed, args.duration, args.clients, failures)
    if "B" in selected:
        phase_b(args.seed, args.duration, failures)
    if "C" in selected:
        phase_c(args.seed, args.duration, failures)
    # Phases D and E use no process pools, so they run even in smoke mode.
    if "D" in selected:
        phase_d(args.seed, args.duration, failures)
    if "E" in selected:
        phase_e(args.seed, args.duration, failures)
    if "F" in selected:
        phase_f(args.seed, args.duration, failures)
    elapsed = time.monotonic() - started

    print(f"== soak finished in {elapsed:.1f} s ==")
    if failures:
        print(f"FAILED: {len(failures)} invariant violation(s)")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("OK: every response was exact or an explicit refusal; "
          "no leaked threads or processes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
