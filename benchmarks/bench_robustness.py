"""Seed-robustness of the headline 7.4x speedup (not a paper figure)."""

from common import record

from repro.experiments.robustness import run_robustness

SEEDS = tuple(range(5))


def test_headline_speedup_is_seed_robust(benchmark):
    result = benchmark.pedantic(
        lambda: run_robustness(seeds=SEEDS), rounds=1, iterations=1
    )
    lines = [
        "Robustness — JT1 collaborative 8-core speedup across workload seeds",
        "seed     " + "  ".join(f"{s:>5}" for s in result.seeds),
        "speedup  " + "  ".join(f"{v:>5.2f}" for v in result.speedups),
        f"mean {result.mean:.2f}, spread {result.spread:.2f}",
    ]
    record("robustness_seeds", "\n".join(lines))
    # Every seed lands near the paper's 7.4, and the spread is small.
    for speedup in result.speedups:
        assert speedup > 7.0
    assert result.spread < 0.5
