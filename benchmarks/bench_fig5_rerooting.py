"""Fig. 5 reproduction: speedup from junction-tree rerooting.

Paper shape: Sp = t_original / t_rerooted approaches 2 once the thread
count exceeds b; with 8 threads the b <= 4 trees reach ~1.9; larger b
needs more threads.
"""

from common import record

from repro.experiments import format_series_table, run_fig5
from repro.simcore.profiles import OPTERON, XEON

CORES = tuple(range(1, 9))


def test_fig5_rerooting_speedup(benchmark):
    results = benchmark.pedantic(
        lambda: run_fig5(cores=CORES), rounds=1, iterations=1
    )
    for platform, per_b in results.items():
        table = format_series_table(
            f"Fig. 5 — rerooting speedup Sp vs #cores ({platform})",
            "b",
            CORES,
            {str(b): sp for b, sp in per_b.items()},
        )
        record(f"fig5_{'xeon' if 'Xeon' in platform else 'opteron'}", table)

    for platform, per_b in results.items():
        for b, speedups in per_b.items():
            # No rerooting benefit on one core.
            assert abs(speedups[0] - 1.0) < 0.05
            # Saturation at 2 once P > b (paper: ~1.9 at 8 cores for b <= 4).
            if b <= 4:
                assert speedups[-1] > 1.85
            assert max(speedups) <= 2.05
            # Monotone non-decreasing up to saturation.
            assert speedups[-1] >= speedups[0]
        # Larger b needs more threads: at P = 2 the b = 8 tree gains less
        # than the b = 1 tree.
        assert per_b[8][1] < per_b[1][1]
