"""Shared benchmark plumbing: a registry of result tables.

Each benchmark records the paper-style table it regenerates; the registry
is dumped at the end of the pytest session (see ``conftest.py``) and also
written to ``benchmarks/results/`` so the numbers survive the run.
"""

from __future__ import annotations

import pathlib
from collections import OrderedDict

RESULTS: "OrderedDict[str, str]" = OrderedDict()

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def record(name: str, table: str) -> None:
    """Register a formatted result table under ``name`` and persist it."""
    RESULTS[name] = table
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(table + "\n")
