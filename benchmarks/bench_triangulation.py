"""Ablation: triangulation heuristics and the tables they produce.

Not a paper figure — the paper receives junction trees ready-made — but
the heuristic choice controls every downstream table size, so the repo's
BN->JT path deserves its own numbers: total potential-table entries per
heuristic over a batch of random networks, plus wall-clock of the builds.
"""

from common import record

import numpy as np

from repro.bn.generation import random_network
from repro.bn.triangulation import HEURISTICS
from repro.experiments import format_series_table
from repro.jt.build import junction_tree_from_network
from repro.jt.stats import total_table_entries, treewidth


def test_triangulation_heuristics(benchmark):
    def run():
        rows = {h: [] for h in HEURISTICS}
        for seed in range(8):
            bn = random_network(
                24, cardinality=2, max_parents=4,
                edge_probability=0.5, seed=seed,
            )
            for heuristic in HEURISTICS:
                jt = junction_tree_from_network(bn, heuristic)
                rows[heuristic].append(
                    (total_table_entries(jt), treewidth(jt))
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table_rows = {}
    for heuristic, samples in rows.items():
        entries = [e for e, _ in samples]
        widths = [w for _, w in samples]
        table_rows[heuristic] = [
            float(np.mean(entries)),
            float(np.max(entries)),
            float(np.mean(widths)),
        ]
    record(
        "ablation_triangulation",
        format_series_table(
            "Ablation — triangulation heuristic over 8 random 24-var "
            "networks",
            "heuristic",
            ("mean entries", "max entries", "mean treewidth"),
            table_rows,
            fmt="{:.1f}",
        ),
    )
    # All heuristics must produce valid (tested elsewhere) and broadly
    # comparable tables; min-fill should not be catastrophically worse
    # than the best on average.
    means = {h: vals[0] for h, vals in table_rows.items()}
    best = min(means.values())
    assert means["min-fill"] <= 3.0 * best


def test_build_wall_clock(benchmark):
    bn = random_network(
        40, cardinality=2, max_parents=3, edge_probability=0.5, seed=3
    )
    jt = benchmark(lambda: junction_tree_from_network(bn))
    assert jt.num_cliques > 1
