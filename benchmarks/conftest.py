"""Benchmark session hooks: print every recorded experiment table."""

from __future__ import annotations

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from common import RESULTS  # noqa: E402


def pytest_terminal_summary(terminalreporter):
    if not RESULTS:
        return
    terminalreporter.section("paper experiment reproductions")
    for name, table in RESULTS.items():
        terminalreporter.write_line("")
        terminalreporter.write_line(table)
