"""Cache economics and fairness of the multi-tenant model registry.

Three scenarios against :class:`repro.registry.RegistryService`:

* **Lifecycle latency** — per model: the cold-compile miss (full
  bn → moralize → triangulate → reroot → calibrate pipeline), the
  resident cache hit, and the checkpoint rehydration after an eviction.
  The headline comparison is *hit vs compile-miss* request latency, and
  the gate is the registry's reason to retain stubs at all:
  **rehydration must beat the cold compile** for every model.
* **Eviction churn** — 8 tenants drive a mixed workload over 4 models
  under a memory budget sized to ~60% of the fleet, forcing LRU
  evictions and rehydrations mid-run; every ``ok`` answer is verified
  against its own model's serial oracle.  Gate: at least one eviction,
  zero silent corruptions, zero lost responses.
* **Fairness** — one saturating tenant burst-submits while seven light
  tenants submit strictly serially (inflight <= 1, i.e. always within
  quota headroom).  Gate: the hog's pressure produces quota refusals
  *for the hog only* — no light tenant is ever quota-shed.

Run as a script to record the table::

    PYTHONPATH=src python benchmarks/bench_registry.py

Results land in ``BENCH_registry.json`` at the repo root.  ``--smoke``
shrinks the workload for CI and enforces every gate above with exit 1.
"""

import argparse
import json
import pathlib
import random
import statistics
import sys
import threading
import time

import numpy as np

from repro import InferenceEngine, random_network
from repro.registry import ModelRegistry, RegistryService, TenantScheduler
from repro.serve import QueryRequest

DEFAULT_OUTPUT = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_registry.json"
)

ATOL = 1e-9
NUM_MODELS = 4
NUM_TENANTS = 8


def make_networks(num_vars, seed):
    return {
        f"model-{i}": random_network(
            num_vars, max_parents=3, edge_probability=0.6, seed=seed + i
        )
        for i in range(NUM_MODELS)
    }


def make_registry(networks, **kw):
    kw.setdefault("sessions", 2)
    kw.setdefault("cache_size", 128)
    registry = ModelRegistry(**kw)
    for model_id, bn in networks.items():
        registry.register(model_id, network=bn)
    return registry


def probe_costs(networks):
    registry = make_registry(networks)
    costs = {m: registry.acquire(m).cost_bytes for m in networks}
    registry.close()
    return costs


def measure_lifecycle(networks, repeats, failures):
    """Cold-compile vs cache-hit vs rehydrate latency, per model."""
    rows = []
    for model_id, bn in networks.items():
        registry = make_registry(networks)
        service = RegistryService(registry)
        request = QueryRequest(delta={0: 1}, vars=[1], model_id=model_id)

        t0 = time.perf_counter()
        service.submit(request).result(120.0)
        cold_miss = time.perf_counter() - t0

        hits = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            service.submit(request).result(120.0)
            hits.append(time.perf_counter() - t0)

        rehydrates = []
        for _ in range(repeats):
            registry.evict(model_id)
            t0 = time.perf_counter()
            service.submit(request).result(120.0)
            rehydrates.append(time.perf_counter() - t0)
        service.drain()

        row = {
            "model": model_id,
            "compile_miss_seconds": cold_miss,
            "hit_seconds_p50": statistics.median(hits),
            "rehydrate_miss_seconds_p50": statistics.median(rehydrates),
        }
        rows.append(row)
        print(
            f"{model_id}: compile-miss {cold_miss * 1e3:8.2f} ms | "
            f"rehydrate-miss {row['rehydrate_miss_seconds_p50'] * 1e3:8.2f}"
            f" ms | hit {row['hit_seconds_p50'] * 1e3:6.2f} ms"
        )
        if row["rehydrate_miss_seconds_p50"] >= cold_miss:
            failures.append(
                f"{model_id}: rehydration "
                f"({row['rehydrate_miss_seconds_p50']:.4f}s) is not faster "
                f"than the cold compile ({cold_miss:.4f}s)"
            )
        if row["hit_seconds_p50"] >= cold_miss:
            failures.append(
                f"{model_id}: a cache hit is not faster than a cold compile"
            )
    return rows


def _oracle_verify(networks, results, failures):
    oracles = {m: InferenceEngine.from_network(bn)
               for m, bn in networks.items()}
    memo = {}
    for request, response in results:
        if response.status != "ok":
            continue
        key = (request.model_id, request.signature())
        if key not in memo:
            oracle = oracles[request.model_id]
            oracle.set_evidence(request.evidence())
            oracle.propagate(incremental=False)
            memo[key] = oracle.marginals_all()
        for var, values in response.marginals.items():
            if not np.allclose(values, memo[key][var], atol=ATOL):
                failures.append(
                    f"SILENT CORRUPTION: {request.model_id} var {var} "
                    f"(tenant {request.tenant})"
                )


def measure_churn(networks, per_tenant, seed, failures):
    """8 tenants over 4 models under a budget forcing evictions."""
    costs = probe_costs(networks)
    budget = int(sum(costs.values()) * 0.6)
    registry = make_registry(networks, memory_budget=budget)
    service = RegistryService(
        registry, scheduler=TenantScheduler(capacity=32)
    )
    model_ids = sorted(networks)
    num_vars = len(next(iter(networks.values())).cardinalities)
    rng = random.Random(seed)
    results, lock = [], threading.Lock()

    def tenant_loop(tenant, trng):
        for _ in range(per_tenant):
            request = QueryRequest(
                delta={trng.randrange(num_vars): trng.randrange(2)},
                vars=[trng.randrange(num_vars)],
                deadline=120.0,
                model_id=trng.choice(model_ids),
                tenant=tenant,
            )
            response = service.submit(request).result(120.0)
            with lock:
                results.append((request, response))

    threads = [
        threading.Thread(
            target=tenant_loop,
            args=(f"tenant-{i}", random.Random(rng.randrange(1 << 30))),
        )
        for i in range(NUM_TENANTS)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    report = service.drain()

    _oracle_verify(networks, results, failures)
    expected = NUM_TENANTS * per_tenant
    if len(results) != expected:
        failures.append(f"lost responses: {len(results)} of {expected}")
    if report.evictions < 1:
        failures.append(
            f"budget {budget} B never forced an eviction — churn setup "
            "is broken"
        )
    if report.failed:
        failures.append(
            f"{report.failed} failed responses in a fault-free churn run"
        )
    print(
        f"churn: {report.served} served in {elapsed:.2f} s | "
        f"{report.model_hits} hits / {report.model_misses} misses | "
        f"{report.compiles} compiles, {report.rehydrations} rehydrations, "
        f"{report.evictions} evictions | peak "
        f"{report.peak_resident_bytes / 1e6:.2f} of "
        f"{budget / 1e6:.2f} MB"
    )
    return {
        "tenants": NUM_TENANTS,
        "models": len(model_ids),
        "requests": expected,
        "seconds": elapsed,
        "memory_budget_bytes": budget,
        "peak_resident_bytes": report.peak_resident_bytes,
        "model_hits": report.model_hits,
        "model_misses": report.model_misses,
        "compiles": report.compiles,
        "rehydrations": report.rehydrations,
        "evictions": report.evictions,
        "served_ok": report.served_ok,
        "shed_by_quota": report.shed_by_quota,
        "latency": report.latency,
        "per_model": report.per_model,
    }


def measure_fairness(networks, seed, failures, hog_bursts, light_requests):
    """One saturating tenant vs seven serial tenants: isolation gate."""
    registry = make_registry(networks)
    model_ids = sorted(networks)
    registry.acquire(model_ids[0])  # pre-compile the contended model
    scheduler = TenantScheduler(capacity=8, burst_factor=1.0)
    service = RegistryService(registry, scheduler=scheduler)
    num_vars = len(next(iter(networks.values())).cardinalities)
    rng = random.Random(seed)

    hog_futures = []
    stop = threading.Event()

    def hog():
        hrng = random.Random(seed + 1)
        while not stop.is_set() and len(hog_futures) < hog_bursts:
            hog_futures.append(service.submit(QueryRequest(
                delta={hrng.randrange(num_vars): hrng.randrange(2)},
                vars=[hrng.randrange(num_vars)],
                deadline=120.0,
                model_id=model_ids[0],
                tenant="hog",
            )))

    hog_thread = threading.Thread(target=hog)
    hog_thread.start()
    light_refused = 0
    light_served = 0
    for i in range(light_requests):
        tenant = f"light-{i % (NUM_TENANTS - 1)}"
        response = service.submit(QueryRequest(
            delta={rng.randrange(num_vars): rng.randrange(2)},
            vars=[rng.randrange(num_vars)],
            deadline=120.0,
            model_id=model_ids[0],
            tenant=tenant,
        )).result(120.0)
        if response.kind == "quota":
            light_refused += 1
        elif response.ok:
            light_served += 1
    stop.set()
    hog_thread.join()
    hog_responses = [f.result(120.0) for f in hog_futures]
    hog_refused = sum(1 for r in hog_responses if r.kind == "quota")
    report = service.drain()

    if light_refused:
        failures.append(
            f"{light_refused} quota refusals hit serial tenants with "
            "headroom — fair isolation broken"
        )
    if hog_refused == 0:
        failures.append(
            "the saturating tenant was never quota-refused — quota "
            "not engaging"
        )
    print(
        f"fairness: hog {len(hog_responses)} submitted, {hog_refused} "
        f"quota-refused | light tenants {light_served}/{light_requests} "
        f"served, {light_refused} quota-refused"
    )
    return {
        "hog_submitted": len(hog_responses),
        "hog_quota_refused": hog_refused,
        "light_requests": light_requests,
        "light_served": light_served,
        "light_quota_refused": light_refused,
        "shed_by_quota": report.shed_by_quota,
        "per_tenant": report.per_tenant,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the multi-tenant model registry"
    )
    parser.add_argument("--variables", type=int, default=24)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--per-tenant", type=int, default=16)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI workload; gates: rehydrate < cold compile, >=1 "
        "eviction, exactness per model, no quota starvation of serial "
        "tenants",
    )
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT))
    args = parser.parse_args(argv)

    num_vars = 14 if args.smoke else args.variables
    per_tenant = 6 if args.smoke else args.per_tenant
    repeats = 3 if args.smoke else 7
    networks = make_networks(num_vars, args.seed)
    failures = []

    lifecycle = measure_lifecycle(networks, repeats, failures)
    churn = measure_churn(networks, per_tenant, args.seed, failures)
    fairness = measure_fairness(
        networks,
        args.seed,
        failures,
        hog_bursts=40 if args.smoke else 200,
        light_requests=12 if args.smoke else 48,
    )

    compile_p50 = statistics.median(
        row["compile_miss_seconds"] for row in lifecycle
    )
    rehydrate_p50 = statistics.median(
        row["rehydrate_miss_seconds_p50"] for row in lifecycle
    )
    hit_p50 = statistics.median(row["hit_seconds_p50"] for row in lifecycle)
    payload = {
        "variables": num_vars,
        "models": NUM_MODELS,
        "tenants": NUM_TENANTS,
        "seed": args.seed,
        "lifecycle": lifecycle,
        "churn": churn,
        "fairness": fairness,
        # Headline rows for dashboards.
        "compile_miss_seconds_p50": compile_p50,
        "rehydrate_miss_seconds_p50": rehydrate_p50,
        "hit_seconds_p50": hit_p50,
        "rehydrate_speedup": (
            compile_p50 / rehydrate_p50 if rehydrate_p50 > 0 else 0.0
        ),
        "evictions": churn["evictions"],
        "rehydrations": churn["rehydrations"],
    }
    out = pathlib.Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"headline: compile-miss {compile_p50 * 1e3:.2f} ms, rehydrate "
        f"{rehydrate_p50 * 1e3:.2f} ms "
        f"({payload['rehydrate_speedup']:.1f}x), hit {hit_p50 * 1e3:.2f} ms"
    )
    print(f"recorded -> {out}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if args.smoke:
        print(
            "gate ok: rehydration beats cold compile, eviction pressure "
            "engaged, every answer exact, no serial tenant quota-starved"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
