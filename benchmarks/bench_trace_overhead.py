"""Observer cost: traced vs. untraced wall clock for each executor.

The span tracer (:mod:`repro.obs`) promises two bounds: the *disabled*
path costs nothing (executors never touch ``repro.obs`` when no tracer
is passed), and the *enabled* path appends one tuple per span to a
per-worker list — cheap enough that traced runs stay within a few
percent of untraced ones.  This benchmark pins both down so the perf
trajectory captures observer cost over time.

Run as a script to record the overhead table::

    PYTHONPATH=src python benchmarks/bench_trace_overhead.py

Results land in ``BENCH_trace.json`` at the repo root (one record per
executor: untraced/traced best-of-N wall time, overhead ratio, span
count).  ``--max-overhead 0.10`` turns the run into a gate — exit 1 if
any executor's traced wall time exceeds untraced by more than 10% — and
is what the CI trace-smoke job invokes.
"""

import argparse
import json
import pathlib
import sys
import time

import numpy as np
import pytest

from repro.jt.generation import synthetic_tree
from repro.obs.tracer import Tracer
from repro.sched.collaborative import CollaborativeExecutor
from repro.sched.process import ProcessSharedMemoryExecutor
from repro.sched.serial import SerialExecutor
from repro.sched.workstealing import WorkStealingExecutor
from repro.tasks.dag import build_task_graph
from repro.tasks.state import PropagationState

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_trace.json"


def _build_workload(num_cliques=64, clique_width=8, seed=77):
    tree = synthetic_tree(
        num_cliques, clique_width=clique_width, states=2, avg_children=3,
        seed=seed,
    )
    tree.initialize_potentials(np.random.default_rng(seed))
    return tree, build_task_graph(tree)


def _executors(workers):
    return [
        ("serial", lambda: SerialExecutor()),
        (
            "collaborative",
            lambda: CollaborativeExecutor(
                num_threads=workers, partition_threshold=4096
            ),
        ),
        (
            "workstealing",
            lambda: WorkStealingExecutor(
                num_threads=workers, partition_threshold=4096
            ),
        ),
        (
            "process",
            lambda: ProcessSharedMemoryExecutor(
                num_workers=workers, partition_threshold=16384
            ),
        ),
    ]


def _one_run(make_executor, graph, tree, traced):
    """One wall-clock measurement; returns (seconds, span_count)."""
    executor = make_executor()
    state = PropagationState(tree)
    tracer = Tracer() if traced else None
    t0 = time.perf_counter()
    if tracer is not None:
        stats = executor.run(graph, state, tracer=tracer)
    else:
        stats = executor.run(graph, state)
    elapsed = time.perf_counter() - t0
    spans = 0
    if tracer is not None:
        trace = tracer.finalize(
            graph=graph, stats=stats, executor=type(executor).__name__
        )
        spans = len(trace.spans)
    return elapsed, spans


def measure_trace_overhead(
    workers=2, num_cliques=64, clique_width=8, repeats=3, seed=77
):
    """Traced-vs-untraced wall clock for every executor on one workload.

    Runs untraced/traced back-to-back as interleaved *pairs* so scheduler
    drift on a loaded machine hits both legs alike.  ``overhead`` is the
    best-vs-best ratio; ``min_pair_overhead`` is the smallest per-pair
    ratio — systematic tracer cost shows up in every pair, a noisy
    neighbor does not, so that is what the CI gate checks.
    """
    tree, graph = _build_workload(num_cliques, clique_width, seed)
    records = []
    for name, make in _executors(workers):
        plain_s = traced_s = float("inf")
        min_pair = float("inf")
        spans = 0
        for _ in range(repeats):
            p, _ = _one_run(make, graph, tree, traced=False)
            t, spans = _one_run(make, graph, tree, traced=True)
            plain_s = min(plain_s, p)
            traced_s = min(traced_s, t)
            if p > 0:
                min_pair = min(min_pair, t / p - 1.0)
        records.append({
            "executor": name,
            "workers": 1 if name == "serial" else workers,
            "num_cliques": num_cliques,
            "clique_width": clique_width,
            "num_tasks": graph.num_tasks,
            "untraced_seconds": plain_s,
            "traced_seconds": traced_s,
            "overhead": traced_s / plain_s - 1.0 if plain_s > 0 else 0.0,
            "min_pair_overhead": min_pair if min_pair != float("inf") else 0.0,
            "spans": spans,
        })
    return records


# --------------------------------------------------------------------- #
# pytest-benchmark entry points (picked up by the benchmark suite)
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def workload():
    return _build_workload()


def test_serial_traced_wall_clock(benchmark, workload):
    tree, graph = workload

    def run():
        tracer = Tracer()
        stats = SerialExecutor().run(
            graph, PropagationState(tree), tracer=tracer
        )
        return tracer.finalize(graph=graph, stats=stats, executor="Serial")

    trace = benchmark(run)
    assert trace.execute_spans()


def test_collaborative_traced_wall_clock(benchmark, workload):
    tree, graph = workload
    executor = CollaborativeExecutor(num_threads=4, partition_threshold=4096)

    def run():
        tracer = Tracer()
        stats = executor.run(graph, PropagationState(tree), tracer=tracer)
        return tracer.finalize(
            graph=graph, stats=stats, executor="Collaborative"
        )

    trace = benchmark(run)
    assert trace.execute_spans()


# --------------------------------------------------------------------- #
# Script mode: record BENCH_trace.json, optionally gate on overhead
# --------------------------------------------------------------------- #


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Record traced-vs-untraced executor wall time"
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--cliques", type=int, default=64)
    parser.add_argument("--width", type=int, default=8)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=None,
        help="fail (exit 1) if any executor's traced/untraced ratio "
        "exceeds 1 + MAX_OVERHEAD (e.g. 0.10 for the CI 10%% gate)",
    )
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT))
    args = parser.parse_args(argv)

    records = measure_trace_overhead(
        workers=args.workers,
        num_cliques=args.cliques,
        clique_width=args.width,
        repeats=args.repeats,
    )
    for r in records:
        print(
            f"{r['executor']:>14}: untraced {r['untraced_seconds']:.4f}s | "
            f"traced {r['traced_seconds']:.4f}s | "
            f"overhead {r['overhead']*100:+.1f}% "
            f"(min pair {r['min_pair_overhead']*100:+.1f}%) | "
            f"{r['spans']} spans"
        )

    out = pathlib.Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(records, indent=2) + "\n")
    print(f"recorded -> {out}")

    if args.max_overhead is not None:
        over = [
            r for r in records if r["min_pair_overhead"] > args.max_overhead
        ]
        if over:
            for r in over:
                print(
                    f"FAIL: {r['executor']} tracing overhead "
                    f"{r['min_pair_overhead']*100:.1f}% in every pair "
                    f"exceeds {args.max_overhead*100:.0f}% budget",
                    file=sys.stderr,
                )
            return 1
        print(f"all executors within {args.max_overhead*100:.0f}% budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
