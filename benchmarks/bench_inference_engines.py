"""Wall-clock benchmarks of the inference engines themselves.

HUGIN-style task-graph propagation vs the lazy Shafer-Shenoy engine
(fresh and incremental), plus junction-tree construction and MPE, on a
moderate random network.
"""

import numpy as np
import pytest

from repro.bn.generation import random_network
from repro.inference.engine import InferenceEngine
from repro.inference.shafershenoy import ShaferShenoyEngine
from repro.jt.build import junction_tree_from_network


@pytest.fixture(scope="module")
def network():
    return random_network(
        60, cardinality=2, max_parents=3, edge_probability=0.5, seed=17
    )


@pytest.fixture(scope="module")
def tree(network):
    return junction_tree_from_network(network)


def test_junction_tree_construction(benchmark, network):
    tree = benchmark(lambda: junction_tree_from_network(network))
    assert tree.num_cliques > 1


def test_hugin_full_propagation(benchmark, network):
    engine = InferenceEngine.from_network(network)
    engine.set_evidence({1: 1, 30: 0})

    def run():
        engine.propagate()
        return engine.marginal(50)

    marginal = benchmark(run)
    assert np.isclose(marginal.sum(), 1.0)


def test_shafershenoy_fresh_query(benchmark, tree):
    def run():
        engine = ShaferShenoyEngine(tree)
        engine.observe(1, 1)
        return engine.marginal(50)

    marginal = benchmark(run)
    assert np.isclose(marginal.sum(), 1.0)


def test_shafershenoy_incremental_update(benchmark, tree):
    engine = ShaferShenoyEngine(tree)
    engine.marginal(50)  # warm the cache
    state = [0]

    def run():
        state[0] ^= 1
        engine.observe(1, state[0])
        return engine.marginal(50)

    marginal = benchmark(run)
    assert np.isclose(marginal.sum(), 1.0)


def test_mpe_query(benchmark, network):
    engine = InferenceEngine.from_network(network)
    engine.set_evidence({1: 1})
    assignment, prob = benchmark(engine.mpe)
    assert prob > 0
