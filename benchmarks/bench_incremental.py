"""Incremental repropagation vs. full propagation, plus query-cache hit rate.

A serving workload changes evidence by small deltas between queries; the
incremental path (:mod:`repro.inference.incremental`) re-runs only the
message pipelines under the changed cliques plus the distribute phase,
reusing every other table from the previous propagation.  This benchmark
pins down the two numbers that justify it:

* **task savings** — for single-variable evidence deltas on a >= 64-clique
  tree, the restricted task graph must execute strictly fewer tasks than
  the full ``8 * (N - 1)`` graph (and correspondingly less wall time), and
* **cache hit rate** — repeated queries over a small set of evidence
  signatures must be served from the :class:`~repro.inference.cache.QueryCache`
  without touching the tree.

Run as a script to record the table::

    PYTHONPATH=src python benchmarks/bench_incremental.py

Results land in ``BENCH_incremental.json`` at the repo root.  ``--smoke``
shrinks the workload for CI and turns the run into a gate: exit 1 if any
single-variable delta fails to execute fewer tasks than full propagation,
or if the repeated-query scenario's cache hit rate is zero.
"""

import argparse
import json
import pathlib
import sys
import time
from collections import Counter

import numpy as np

from repro.inference.engine import InferenceEngine
from repro.jt.generation import synthetic_tree

DEFAULT_OUTPUT = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_incremental.json"
)


def _build_engine(num_cliques=64, clique_width=6, seed=9):
    tree = synthetic_tree(
        num_cliques, clique_width=clique_width, states=2, avg_children=3,
        seed=seed,
    )
    tree.initialize_potentials(np.random.default_rng(seed))
    return InferenceEngine(tree)


def _local_variables(engine, count):
    """Variables hosted by exactly one clique (never in a separator).

    Hard evidence on these cannot zero any separator, so every delta in
    the measurement loop stays on the incremental path — the benchmark
    measures steady-state savings, not the weakening fallback.
    """
    occurrences = Counter(
        v for clique in engine.jt.cliques for v in clique.variables
    )
    local = sorted(v for v, n in occurrences.items() if n == 1)
    if len(local) < count:
        raise RuntimeError(
            f"workload has only {len(local)} single-clique variables, "
            f"need {count}; grow the tree"
        )
    # Spread across the tree rather than clustering at low clique ids.
    step = max(1, len(local) // count)
    return local[::step][:count]


def measure_incremental(num_cliques=64, clique_width=6, deltas=8, seed=9):
    """Per-delta task counts and wall time, incremental vs. full."""
    engine = _build_engine(num_cliques, clique_width, seed)
    full_tasks = engine.task_graph.num_tasks
    engine.propagate()  # initial full calibration
    variables = _local_variables(engine, deltas)

    records = []
    for var in variables:
        engine.observe(var, 1)

        t0 = time.perf_counter()
        engine.propagate()  # incremental="auto"
        inc_seconds = time.perf_counter() - t0
        inc_stats = engine.last_stats

        # Full-propagation twin of the same evidence set, fresh engine so
        # the incremental chain above is undisturbed.
        twin = _build_engine(num_cliques, clique_width, seed)
        twin.set_evidence(engine.evidence)
        t0 = time.perf_counter()
        twin.propagate(incremental=False)
        full_seconds = time.perf_counter() - t0

        # Correctness spot check: the two calibrations agree.
        for check_var in variables[:2]:
            np.testing.assert_allclose(
                engine._state.marginal(check_var),
                twin._state.marginal(check_var),
                atol=1e-12,
            )

        records.append({
            "variable": int(var),
            "incremental": bool(inc_stats.incremental),
            "incremental_tasks": inc_stats.tasks_executed,
            "full_tasks": full_tasks,
            "tasks_skipped": inc_stats.tasks_skipped,
            "incremental_seconds": inc_seconds,
            "full_seconds": full_seconds,
            "speedup": full_seconds / inc_seconds if inc_seconds > 0 else 0.0,
        })
    return records


def measure_cache(num_cliques=64, clique_width=6, signatures=4, rounds=5, seed=9):
    """Repeated-query scenario: a small working set of evidence signatures
    queried round-robin; everything after round one should hit the cache."""
    engine = _build_engine(num_cliques, clique_width, seed)
    variables = _local_variables(engine, signatures + 3)
    evidence_sets = [{variables[i]: 1} for i in range(signatures)]
    query_vars = [int(v) for v in variables[signatures:signatures + 3]]

    t0 = time.perf_counter()
    for _ in range(rounds):
        for delta in evidence_sets:
            engine.query(delta, vars=query_vars)
            # Return to the empty-evidence signature between requests so
            # each round replays the same signature sequence.
            engine.query({var: None for var in delta}, vars=query_vars)
    elapsed = time.perf_counter() - t0

    return {
        "signatures": signatures,
        "rounds": rounds,
        "query_variables": query_vars,
        "queries": 2 * signatures * rounds * len(query_vars),
        "cache_hits": engine.cache.hits,
        "cache_misses": engine.cache.misses,
        "hit_rate": engine.cache.hit_rate(),
        "seconds": elapsed,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Record incremental-vs-full propagation savings"
    )
    parser.add_argument("--cliques", type=int, default=96)
    parser.add_argument("--width", type=int, default=6)
    parser.add_argument("--deltas", type=int, default=8)
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--seed", type=int, default=9)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI workload (64 cliques) and gate the results: "
        "incremental must execute fewer tasks than full for every "
        "single-variable delta, and the cache hit rate must be nonzero",
    )
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT))
    args = parser.parse_args(argv)

    num_cliques = 64 if args.smoke else args.cliques
    deltas = 4 if args.smoke else args.deltas
    rounds = 3 if args.smoke else args.rounds

    records = measure_incremental(
        num_cliques=num_cliques,
        clique_width=args.width,
        deltas=deltas,
        seed=args.seed,
    )
    for r in records:
        print(
            f"delta var {r['variable']:>3}: "
            f"{r['incremental_tasks']:>4} / {r['full_tasks']} tasks "
            f"({r['tasks_skipped']} skipped) | "
            f"{r['incremental_seconds']*1e3:7.2f} ms vs "
            f"{r['full_seconds']*1e3:7.2f} ms full "
            f"({r['speedup']:.2f}x)"
        )

    cache = measure_cache(
        num_cliques=num_cliques,
        clique_width=args.width,
        rounds=rounds,
        seed=args.seed,
    )
    print(
        f"cache: {cache['cache_hits']} hits / {cache['cache_misses']} misses "
        f"over {cache['queries']} marginal requests "
        f"(hit rate {cache['hit_rate']*100:.1f}%)"
    )

    payload = {
        "num_cliques": num_cliques,
        "clique_width": args.width,
        "full_tasks": records[0]["full_tasks"] if records else 0,
        "deltas": records,
        "cache": cache,
    }
    out = pathlib.Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"recorded -> {out}")

    if args.smoke:
        failed = False
        for r in records:
            if not (r["incremental_tasks"] < r["full_tasks"]):
                print(
                    f"FAIL: delta on var {r['variable']} executed "
                    f"{r['incremental_tasks']} tasks, not fewer than the "
                    f"full graph's {r['full_tasks']}",
                    file=sys.stderr,
                )
                failed = True
        if cache["hit_rate"] <= 0.0:
            print(
                "FAIL: repeated-query scenario produced a zero cache hit "
                "rate",
                file=sys.stderr,
            )
            failed = True
        if failed:
            return 1
        print(
            "gate ok: incremental < full task count on every delta, "
            f"cache hit rate {cache['hit_rate']*100:.1f}%"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
