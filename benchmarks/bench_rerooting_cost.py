"""Section 7's rerooting-cost measurements.

Paper claims: Algorithm 1 is O(w_C N) against the straightforward
O(w_C N^2) method, and its runtime is negligible relative to evidence
propagation (24 µs vs ~milliseconds-to-seconds overall).
"""

from common import record

from repro.experiments import run_rerooting_cost

SIZES = (64, 128, 256, 512)


def _format(result) -> str:
    lines = [
        "Rerooting cost — Algorithm 1 vs brute force (measured wall clock)",
        f"{'N':>5}  {'Alg.1 (ms)':>11}  {'brute (ms)':>11}  "
        f"{'brute/Alg.1':>11}  {'modeled overhead':>17}",
        "-" * 65,
    ]
    for n in SIZES:
        fast = result.fast_seconds[n] * 1e3
        brute = result.brute_seconds[n] * 1e3
        frac = result.modeled_fraction[n]
        lines.append(
            f"{n:>5}  {fast:>11.3f}  {brute:>11.3f}  "
            f"{brute / max(fast, 1e-9):>11.1f}  {frac:>16.2e}"
        )
    return "\n".join(lines)


def test_rerooting_cost_scaling(benchmark):
    result = benchmark.pedantic(
        lambda: run_rerooting_cost(sizes=SIZES), rounds=1, iterations=1
    )
    record("rerooting_cost", _format(result))

    # O(N) vs O(N^2): the brute-force advantage ratio grows with N.
    ratios = [
        result.brute_seconds[n] / result.fast_seconds[n] for n in SIZES
    ]
    assert ratios[-1] > 4 * ratios[0] * 0.5  # superlinear growth, with slack
    assert ratios[-1] > 20
    # Rerooting overhead is negligible against propagation.
    for n in SIZES:
        assert result.modeled_fraction[n] < 1e-3


def test_algorithm1_wall_clock(benchmark):
    """Direct pytest-benchmark timing of Algorithm 1 on a 512-clique tree."""
    from repro.jt.generation import synthetic_tree
    from repro.jt.rerooting import select_root

    tree = synthetic_tree(
        512, clique_width=15, states=2, avg_children=4, seed=0
    )
    root, weight = benchmark(lambda: select_root(tree))
    assert weight > 0
