"""Fig. 6 reproduction: PNL-style centralized inference scalability.

Paper shape: for all three junction trees, execution time *increases*
beyond ~4 processors — the centralized scheduler's coordination cost grows
with the processor count until it dominates.
"""

from common import record

from repro.experiments import format_series_table, run_fig6

PROCS = (1, 2, 4, 6, 8)


def test_fig6_pnl_execution_time(benchmark):
    results = benchmark.pedantic(
        lambda: run_fig6(processors=PROCS), rounds=1, iterations=1
    )
    record(
        "fig6_pnl",
        format_series_table(
            "Fig. 6 — PNL-like centralized inference, execution time (s) "
            "vs #processors (IBM P655-like)",
            "workload",
            PROCS,
            results,
            fmt="{:.3f}",
        ),
    )
    for name, times in results.items():
        by_proc = dict(zip(PROCS, times))
        # Past 4 processors the time rises (the paper's headline finding).
        assert by_proc[8] > by_proc[4], name
        # Some parallelism helps initially.
        assert min(times) < times[0], name
