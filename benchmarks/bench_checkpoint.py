"""Warm restart from a checkpoint vs. recalibrating from scratch.

A recycled (or restarted) serving session has two ways back to a
calibrated state: replay the full propagation, or restore the
:mod:`repro.integrity.checkpoint` archive saved when the state was last
known good.  The restore path skips every DIVIDE/EXTEND/MULTIPLY/
MARGINALIZE primitive — it only validates signatures, checksums the
table bytes and rebuilds the table objects — so on any tree large
enough to matter it must be markedly faster, and (because float64
round-trips npz bit-exactly) answer queries *bit-identically* to the
session that saved it.

Run as a script to record the numbers::

    PYTHONPATH=src python benchmarks/bench_checkpoint.py

Results land in ``BENCH_checkpoint.json`` at the repo root.  ``--smoke``
shrinks the workload for CI and turns the run into a gate: exit 1 if
restoring is not at least ``--min-speedup`` (default 5x) faster than
recalibration, or if any restored marginal differs by a single bit.
"""

import argparse
import io
import json
import pathlib
import sys
import time

import numpy as np

from repro.inference.engine import InferenceEngine
from repro.jt.generation import synthetic_tree

DEFAULT_OUTPUT = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_checkpoint.json"
)


def _build_engine(num_cliques, clique_width, seed):
    tree = synthetic_tree(
        num_cliques, clique_width=clique_width, states=2, avg_children=3,
        seed=seed,
    )
    tree.initialize_potentials(np.random.default_rng(seed))
    return tree, InferenceEngine(tree)


def measure(num_cliques, clique_width, rounds, seed):
    tree, engine = _build_engine(num_cliques, clique_width, seed)
    engine.observe(0, 1)
    engine.propagate()

    payload = io.BytesIO()
    t0 = time.perf_counter()
    manifest = engine.checkpoint(payload)
    save_seconds = time.perf_counter() - t0
    blob = payload.getvalue()

    variables = sorted(
        {v for clique in tree.cliques for v in clique.variables}
    )[:12]
    reference = {v: engine.marginal(v) for v in variables}

    restore_times, recal_times = [], []
    bit_identical = True
    for _ in range(rounds):
        cold = InferenceEngine(tree)
        t0 = time.perf_counter()
        cold.restore(io.BytesIO(blob))
        restore_times.append(time.perf_counter() - t0)
        for v in variables:
            if not (cold.marginal(v) == reference[v]).all():
                bit_identical = False

        cold = InferenceEngine(tree)
        cold.observe(0, 1)
        t0 = time.perf_counter()
        cold.propagate(incremental=False)
        recal_times.append(time.perf_counter() - t0)

    restore = min(restore_times)
    recalibrate = min(recal_times)
    return {
        "num_cliques": num_cliques,
        "clique_width": clique_width,
        "rounds": rounds,
        "tables": manifest["tables"],
        "checkpoint_bytes": len(blob),
        "save_seconds": save_seconds,
        "restore_seconds": restore,
        "recalibrate_seconds": recalibrate,
        "speedup": recalibrate / restore if restore > 0 else 0.0,
        "bit_identical": bit_identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Warm restart from checkpoint vs. full recalibration"
    )
    parser.add_argument("--cliques", type=int, default=192)
    parser.add_argument("--width", type=int, default=6)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--seed", type=int, default=9)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="smoke gate: restore must beat recalibration by this factor",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smaller CI workload, and gate on min-speedup and "
        "bit-identical restored marginals",
    )
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT))
    args = parser.parse_args(argv)

    num_cliques = 96 if args.smoke else args.cliques
    result = measure(num_cliques, args.width, args.rounds, args.seed)

    print(
        f"checkpoint: {result['tables']} tables, "
        f"{result['checkpoint_bytes'] / 1024:.0f} KiB, "
        f"saved in {result['save_seconds']*1e3:.2f} ms"
    )
    print(
        f"restore  {result['restore_seconds']*1e3:8.2f} ms   "
        f"recalibrate {result['recalibrate_seconds']*1e3:8.2f} ms   "
        f"({result['speedup']:.1f}x, "
        f"bit-identical={result['bit_identical']})"
    )

    out = pathlib.Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"recorded -> {out}")

    if args.smoke:
        failed = False
        if not result["bit_identical"]:
            print(
                "FAIL: restored marginals are not bit-identical to the "
                "checkpointing session's",
                file=sys.stderr,
            )
            failed = True
        if result["speedup"] < args.min_speedup:
            print(
                f"FAIL: restore is only {result['speedup']:.1f}x faster "
                f"than recalibration (gate: {args.min_speedup:.1f}x)",
                file=sys.stderr,
            )
            failed = True
        if failed:
            return 1
        print(
            f"gate ok: warm restart {result['speedup']:.1f}x faster than "
            "recalibration, restored marginals bit-identical"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
