"""Streaming DBN filtering: tick throughput, tail latency, roll cost.

Drives a seeded evidence-tick schedule through a
:class:`repro.streaming.FilteringSession` and records ticks/sec, the
per-tick p50/p99 split into plain ticks and window-roll ticks, and the
incremental-vs-full speedup (the same schedule re-run with
``incremental=False`` — every tick pays a full repropagation of the
window).  A second scenario pushes the same load through a
:class:`repro.serve.StreamingService` with several concurrent streams
and records end-to-end ticks/sec and queue-to-response latency.

Run as a script to record the table::

    PYTHONPATH=src python benchmarks/bench_streaming.py

Results land in ``BENCH_streaming.json`` at the repo root.  ``--smoke``
shrinks the workload for CI and turns the run into a gate: exit 1 if any
streamed posterior disagrees with the offline unrolled-network oracle at
1e-9, if incremental repropagation is not faster than full, or if the
window never rolled (the interface algorithm not engaging).
"""

import argparse
import json
import pathlib
import random
import sys
import time

import numpy as np

from repro.bn.dbn import DynamicBayesianNetwork
from repro.inference.engine import InferenceEngine
from repro.potential.table import PotentialTable
from repro.serve import StreamingService
from repro.streaming import FilteringSession

DEFAULT_OUTPUT = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_streaming.json"
)

ATOL = 1e-9


def build_dbn(k=6, interface_size=2, seed=7):
    """A k-variable template: intra chain, ``interface_size`` carryovers."""
    rng = np.random.default_rng(seed)
    cards = [2 + (v % 2) for v in range(k)]
    dbn = DynamicBayesianNetwork(cards)
    intra_parents = {v: [] for v in range(k)}
    for v in range(1, k):
        dbn.add_intra_edge(v - 1, v)
        intra_parents[v].append(v - 1)
    inter_parents = {v: [] for v in range(k)}
    for u in range(interface_size):
        dbn.add_inter_edge(u, u)
        inter_parents[u].append(u)
    if interface_size >= 1 and k >= 2:
        dbn.add_inter_edge(0, 1)
        inter_parents[1].append(0)

    def cpt(scope_cards):
        table = rng.random(tuple(scope_cards)) + 0.05
        return table / table.sum(axis=-1, keepdims=True)

    for v in range(k):
        scope = intra_parents[v] + [v]
        scards = [cards[u] for u in scope]
        dbn.set_prior_cpt(v, PotentialTable(scope, scards, cpt(scards)))
        tscope = [p + k for p in inter_parents[v]] + intra_parents[v] + [v]
        tcards = [cards[u % k] for u in tscope]
        dbn.set_transition_cpt(
            v, PotentialTable(tscope, tcards, cpt(tcards))
        )
    return dbn


def make_schedule(dbn, ticks, seed):
    """Seeded evidence ticks: observe the chain's tail, sometimes nothing."""
    rng = random.Random(seed)
    observed = list(range(max(dbn.k - 2, 1), dbn.k))
    schedule = []
    for _ in range(ticks):
        if rng.random() < 0.1:
            schedule.append({})
        else:
            schedule.append(
                {v: rng.randrange(dbn.slice_cards[v]) for v in observed}
            )
    return schedule


def oracle_posteriors(dbn, ticks, vars, t):
    engine = InferenceEngine.from_network(dbn.unroll(len(ticks)))
    for ti, delta in enumerate(ticks):
        for v, state in delta.items():
            engine.observe(dbn.variable_at(v, ti), int(state))
    engine.propagate(incremental=False)
    return {v: engine.marginal(dbn.variable_at(v, t)) for v in vars}


def _percentiles(seconds):
    if not seconds:
        return {}
    arr = np.asarray(seconds)
    return {
        "p50": float(np.percentile(arr, 50)),
        "p99": float(np.percentile(arr, 99)),
    }


def measure_session(dbn, schedule, window, retire, incremental,
                    failures, check_every=0):
    """One session over the schedule; per-tick timings and exactness."""
    session = FilteringSession(
        dbn, window=window, retire=retire, incremental=incremental
    )
    plain, rolls = [], []
    t0 = time.perf_counter()
    for i, delta in enumerate(schedule):
        result = session.tick(dict(delta))
        (rolls if result.rolled else plain).append(
            result.seconds + result.roll_seconds
        )
        if check_every and (i + 1) % check_every == 0:
            want = oracle_posteriors(
                dbn, schedule[: i + 1], range(dbn.k), t=i
            )
            for v in range(dbn.k):
                if not np.allclose(
                    session.posterior(v), want[v], atol=ATOL
                ):
                    failures.append(
                        f"streamed posterior of var {v} at t={i} "
                        f"diverged from the unrolled oracle "
                        f"(incremental={incremental})"
                    )
    elapsed = time.perf_counter() - t0
    return {
        "incremental": incremental,
        "ticks": len(schedule),
        "rolls": session.rolls,
        "seconds": elapsed,
        "ticks_per_sec": len(schedule) / elapsed if elapsed > 0 else 0.0,
        "tick_seconds_total": sum(plain) + sum(rolls),
        "latency_plain": _percentiles(plain),
        "latency_roll": _percentiles(rolls),
    }


def measure_service(dbn, schedule, window, retire, streams, workers,
                    failures):
    """Concurrent streams through the service; end-to-end tick latency."""
    service = StreamingService(
        dbn, window=window, retire=retire, workers=workers,
        max_pending=len(schedule),
    )
    handles = [
        service.subscribe(name=f"bench-{i}") for i in range(streams)
    ]
    t0 = time.perf_counter()
    futures = [
        (handle, service.push_tick(handle, dict(delta)))
        for delta in schedule
        for handle in handles
    ]
    responses = [f.result(600.0) for _, f in futures]
    elapsed = time.perf_counter() - t0
    report = service.drain()
    if report.ticks_failed or report.ticks_deadline:
        failures.append(
            f"service refused ticks in a fault-free workload "
            f"({report.ticks_failed} failed, {report.ticks_deadline} "
            f"deadline)"
        )
    ok = sum(1 for r in responses if r.ok)
    return {
        "streams": streams,
        "workers": workers,
        "ticks": len(responses),
        "ticks_ok": ok,
        "seconds": elapsed,
        "ticks_per_sec": ok / elapsed if elapsed > 0 else 0.0,
        "window_rolls": report.window_rolls,
        "latency": report.latency,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark streaming DBN filtering"
    )
    parser.add_argument("--slice-vars", type=int, default=8)
    parser.add_argument("--interface", type=int, default=3)
    parser.add_argument("--ticks", type=int, default=60)
    parser.add_argument("--window", type=int, default=8)
    parser.add_argument("--retire", type=int, default=None)
    parser.add_argument("--streams", type=int, default=4)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI workload and gate: every streamed posterior must "
        "match the unrolled oracle at 1e-9, incremental must beat full, "
        "the window must roll",
    )
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT))
    args = parser.parse_args(argv)

    ticks = 24 if args.smoke else args.ticks
    dbn = build_dbn(args.slice_vars, args.interface, args.seed)
    schedule = make_schedule(dbn, ticks, args.seed)
    failures = []

    incremental = measure_session(
        dbn, schedule, args.window, args.retire, True, failures,
        check_every=1 if args.smoke else max(ticks // 6, 1),
    )
    full = measure_session(
        dbn, schedule, args.window, args.retire, False, failures,
        check_every=0,
    )
    speedup = (
        full["tick_seconds_total"] / incremental["tick_seconds_total"]
        if incremental["tick_seconds_total"] > 0
        else 0.0
    )
    for row, label in ((incremental, "incremental"), (full, "full")):
        plain, roll = row["latency_plain"], row["latency_roll"]
        print(
            f"{label:11s}: {row['ticks_per_sec']:8.1f} ticks/s | "
            f"plain p50 {plain.get('p50', 0)*1e3:7.2f} ms  "
            f"p99 {plain.get('p99', 0)*1e3:7.2f} ms | "
            f"roll p50 {roll.get('p50', 0)*1e3:7.2f} ms | "
            f"{row['rolls']} rolls"
        )
    print(f"incremental-vs-full speedup: {speedup:.2f}x")

    service = measure_service(
        dbn, schedule, args.window, args.retire,
        args.streams, args.workers, failures,
    )
    lat = service["latency"]
    print(
        f"service ({service['streams']} streams): "
        f"{service['ticks_per_sec']:8.1f} ticks/s | "
        f"p50 {lat.get('p50', 0)*1e3:7.2f} ms  "
        f"p99 {lat.get('p99', 0)*1e3:7.2f} ms | "
        f"{service['window_rolls']} rolls"
    )

    if incremental["rolls"] < 1:
        failures.append(
            "the window never rolled — grow --ticks or shrink --window"
        )
    if speedup <= 1.0:
        failures.append(
            f"incremental repropagation not faster than full "
            f"({speedup:.2f}x)"
        )

    payload = {
        "slice_vars": args.slice_vars,
        "interface": args.interface,
        "ticks": ticks,
        "window": args.window,
        "retire": args.retire,
        "seed": args.seed,
        "incremental": incremental,
        "full": full,
        "service": service,
        # Headline row for dashboards.
        "ticks_per_sec": incremental["ticks_per_sec"],
        "p50_seconds": incremental["latency_plain"].get("p50", 0.0),
        "p99_seconds": incremental["latency_plain"].get("p99", 0.0),
        "speedup_incremental_vs_full": speedup,
        "window_rolls": incremental["rolls"],
    }
    out = pathlib.Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"recorded -> {out}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if args.smoke:
        print("gate ok: every tick exact vs the unrolled oracle; "
              "incremental beat full; the window rolled")
    return 0


if __name__ == "__main__":
    sys.exit(main())
