"""Whole-process recovery cost: crash-and-restart RTO, warm vs. cold.

Two measurements against one durable root:

* **Streaming recovery.**  A real child serving process
  (:mod:`repro.durability.harness`) is ``SIGKILL``'d mid-traffic; the
  benchmark times how long a fresh incarnation takes to truncate the
  torn tail, restore the segment snapshot and replay the journal back
  to the acknowledged state — the stream's recovery time objective.
  Every acked posterior is re-verified against the offline unrolled
  oracle at 1e-9, and no acked tick may be missing from the recovered
  state.
* **Registry recovery.**  A model is compiled cold under a durable
  root (artifacts persisted), then a *fresh* registry on the same root
  adopts the artifacts and rehydrates.  Warm adoption skips moralize /
  triangulate / calibrate, so it must be markedly faster than the cold
  compile.

Run as a script to record the numbers::

    PYTHONPATH=src python benchmarks/bench_recovery.py

Results land in ``BENCH_recovery.json`` at the repo root.  ``--smoke``
shrinks the workload for CI and turns the run into a gate: exit 1 on
any acked-tick loss, any acked posterior off the oracle by more than
1e-9, or a warm registry recovery less than ``--min-speedup`` (default
3x) faster than the cold compile.
"""

import argparse
import json
import pathlib
import shutil
import sys
import tempfile
import time

DEFAULT_OUTPUT = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_recovery.json"
)


def measure_streaming(seed: int, ticks: int, kill_after: int):
    """SIGKILL a child mid-schedule; time and verify the recovery."""
    from repro.durability import harness
    from repro.serve.streaming import StreamingService

    root = tempfile.mkdtemp(prefix="bench-recovery-")
    try:
        dbn = harness.build_demo_dbn(seed)
        schedule = harness.build_schedule(seed, ticks)
        proc = harness.spawn_child(root, seed, ticks)
        acks, _, done = harness.read_acks(proc, count=kill_after)
        harness.kill_child(proc)
        exact_failures = harness.verify_acks(dbn, schedule, acks)

        t0 = time.perf_counter()
        service = StreamingService(
            dbn,
            window=harness.WINDOW,
            retire=harness.RETIRE,
            workers=1,
            durable_root=root,
        )
        recovery_seconds = time.perf_counter() - t0
        report = service.recovery_report
        stream = report.streams[0] if report.streams else None
        acked = {int(a["seq"]) for a in acks}
        lost = set()
        if stream is not None:
            survived = set(stream.applied_seqs) | set(
                range(stream.final_t - len(stream.applied_seqs))
            )
            lost = acked - survived
        service.drain()
        return {
            "ticks": ticks,
            "acked_before_kill": len(acks),
            "killed_mid_traffic": not done,
            "recovery_seconds": recovery_seconds,
            "replayed_ticks": report.replayed_ticks,
            "dropped_unacked": report.dropped_unacked,
            "torn_bytes": report.torn_bytes,
            "acked_ticks_lost": sorted(lost),
            "exactness_failures": exact_failures,
            "recovery_wall_seconds": report.wall_seconds,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def measure_registry(seed: int, variables: int, rounds: int):
    """Cold compile under a durable root vs. warm adopt-and-rehydrate."""
    from repro.bn import random_network
    from repro.registry import ModelRegistry

    network = random_network(variables, seed=seed)
    root = tempfile.mkdtemp(prefix="bench-recovery-reg-")
    try:
        cold_times, warm_times = [], []
        for _ in range(rounds):
            shutil.rmtree(root, ignore_errors=True)
            registry = ModelRegistry(durable_root=root)
            registry.register("bench-model", network=network)
            t0 = time.perf_counter()
            registry.acquire("bench-model")
            cold_times.append(time.perf_counter() - t0)
            registry.close()

            fresh = ModelRegistry(durable_root=root)
            t0 = time.perf_counter()
            fresh.register("bench-model", network=network)
            fresh.acquire("bench-model")
            warm_times.append(time.perf_counter() - t0)
            adopted = fresh.stats()["recovered_models"]
            fresh.close()
            if adopted != 1:
                raise RuntimeError(
                    f"fresh registry adopted {adopted} models, expected 1"
                )
        cold = min(cold_times)
        warm = min(warm_times)
        return {
            "variables": variables,
            "rounds": rounds,
            "cold_compile_seconds": cold,
            "warm_recovery_seconds": warm,
            "speedup": cold / warm if warm > 0 else 0.0,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Crash-and-restart recovery cost, streaming + registry"
    )
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument("--ticks", type=int, default=48)
    parser.add_argument("--variables", type=int, default=18)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="smoke gate: warm registry recovery must beat the cold "
        "compile by this factor",
    )
    parser.add_argument(
        "--max-recovery-seconds",
        type=float,
        default=10.0,
        help="smoke gate: streaming recovery must finish inside this bound",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smaller CI workload, and gate on acked-tick loss, 1e-9 "
        "exactness, bounded recovery time and warm-vs-cold speedup",
    )
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT))
    args = parser.parse_args(argv)

    ticks = 16 if args.smoke else args.ticks
    # The smoke model stays small enough for CI but large enough that
    # the warm-vs-cold gap clears the gate with margin: compile cost
    # grows superlinearly in the tree, rehydrate roughly linearly.
    variables = 26 if args.smoke else args.variables
    streaming = measure_streaming(args.seed, ticks, kill_after=ticks // 2)
    registry = measure_registry(args.seed, variables, args.rounds)
    result = {"streaming": streaming, "registry": registry}

    print(
        f"streaming: killed after {streaming['acked_before_kill']} acks, "
        f"recovered {streaming['replayed_ticks']} ticks in "
        f"{streaming['recovery_seconds']*1e3:.1f} ms "
        f"(lost={len(streaming['acked_ticks_lost'])}, "
        f"exactness failures={len(streaming['exactness_failures'])})"
    )
    print(
        f"registry:  cold {registry['cold_compile_seconds']*1e3:8.1f} ms   "
        f"warm {registry['warm_recovery_seconds']*1e3:8.1f} ms   "
        f"({registry['speedup']:.1f}x)"
    )

    out = pathlib.Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"recorded -> {out}")

    if args.smoke:
        failed = False
        if streaming["acked_ticks_lost"]:
            print(
                f"FAIL: acked ticks {streaming['acked_ticks_lost']} lost "
                f"across the crash",
                file=sys.stderr,
            )
            failed = True
        if streaming["exactness_failures"]:
            for failure in streaming["exactness_failures"]:
                print(f"FAIL: {failure}", file=sys.stderr)
            failed = True
        if streaming["recovery_seconds"] > args.max_recovery_seconds:
            print(
                f"FAIL: streaming recovery took "
                f"{streaming['recovery_seconds']:.2f}s "
                f"(gate: {args.max_recovery_seconds:.1f}s)",
                file=sys.stderr,
            )
            failed = True
        if registry["speedup"] < args.min_speedup:
            print(
                f"FAIL: warm registry recovery only {registry['speedup']:.1f}x "
                f"faster than the cold compile (gate: "
                f"{args.min_speedup:.1f}x)",
                file=sys.stderr,
            )
            failed = True
        if failed:
            return 1
        print(
            f"gate ok: zero acked-tick loss, every acked posterior exact "
            f"at 1e-9, warm recovery {registry['speedup']:.1f}x faster "
            f"than cold compile"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
