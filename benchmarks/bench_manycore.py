"""Extension experiment: many-core projection (Section 8 outlook).

Shape claim: the shared-lock collaborative scheduler loses ground to the
work-stealing variant as core counts grow past the paper's 8, because its
per-task lock cost scales with P.
"""

from common import record

from repro.experiments import format_series_table
from repro.experiments.manycore import run_manycore

CORES = (1, 2, 4, 8, 16, 32, 64)


def test_manycore_projection(benchmark):
    results = benchmark.pedantic(
        lambda: run_manycore(cores=CORES), rounds=1, iterations=1
    )
    record(
        "extension_manycore",
        format_series_table(
            "Extension — JT1 speedup projected to many-core (Xeon-like)",
            "scheduler",
            CORES,
            results,
        ),
    )
    shared = results["collaborative (shared locks)"]
    stealing = results["work-stealing (Section 8)"]
    # The serialized global-list lock caps and then *degrades* the
    # shared-lock scheduler ("lock contention will increase dramatically").
    assert max(shared) < 8.0
    assert shared[-1] < max(shared)
    # Work stealing keeps scaling well past the paper's 8 cores.
    assert stealing[-1] > 3.0 * shared[-1]
    assert stealing[4] > 12.0  # 16 cores
