"""Fig. 7 reproduction: scalability of the three methods on both platforms.

Paper headlines: the proposed collaborative scheduler reaches 7.4x on Xeon
and 7.1x on Opteron at 8 cores; it beats the OpenMP baseline by ~2.1x and
the data-parallel baseline by ~1.8x.
"""

from common import record

from repro.experiments import format_series_table, run_fig7
from repro.simcore.profiles import OPTERON, XEON

CORES = (1, 2, 4, 8)


def test_fig7_method_scalability(benchmark):
    results = benchmark.pedantic(
        lambda: run_fig7(cores=CORES), rounds=1, iterations=1
    )
    for platform, rows in results.items():
        tag = "xeon" if "Xeon" in platform else "opteron"
        record(
            f"fig7_{tag}",
            format_series_table(
                f"Fig. 7 — speedup vs #cores ({platform})",
                "workload/method",
                CORES,
                rows,
            ),
        )

    xeon = results[XEON.name]
    opteron = results[OPTERON.name]

    # Headline: near-linear speedup of the proposed method on JT1.
    assert xeon["JT1/collaborative"][-1] > 7.0
    assert opteron["JT1/collaborative"][-1] > 6.8
    # Proposed beats OpenMP by about 2x at 8 cores (paper: 2.1).
    ratio_omp = xeon["JT1/collaborative"][-1] / xeon["JT1/openmp"][-1]
    assert 1.6 < ratio_omp < 2.9
    # Proposed beats the data-parallel method (paper: 1.8 on Opteron).
    ratio_dp = (
        opteron["JT1/collaborative"][-1] / opteron["JT1/data-parallel"][-1]
    )
    assert 1.4 < ratio_dp < 2.6
    # The proposed method is near-linear on every workload.
    for platform_rows in results.values():
        for name, speedups in platform_rows.items():
            if name.endswith("collaborative"):
                assert speedups[-1] > 6.0, name
            else:
                # Baselines saturate well below the proposed method.
                assert speedups[-1] < 5.5, name
