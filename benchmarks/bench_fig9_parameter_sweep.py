"""Fig. 9 reproduction: parameter sweeps around Junction tree 1.

Paper shape: all configurations scale almost linearly (speedup > 7 at 8
cores for the N sweep) except the small-table case w_C = 10, r = 2, where
per-task overheads dominate 1024-entry potential tables.
"""

from common import record

from repro.experiments import format_series_table, run_fig9

CORES = (1, 2, 4, 8)


def test_fig9_parameter_sweeps(benchmark):
    results = benchmark.pedantic(
        lambda: run_fig9(cores=CORES), rounds=1, iterations=1
    )
    for panel, rows in results.items():
        tag = panel.split(":")[0].strip()
        record(
            f"fig9{tag}",
            format_series_table(
                f"Fig. 9({panel}) — proposed method speedup vs #cores "
                "(Intel Xeon-like)",
                "configuration",
                CORES,
                rows,
            ),
        )

    n_sweep = results["a: number of cliques N"]
    for name, speedups in n_sweep.items():
        # Paper: "speedups ... with various values for N were all above 7".
        assert speedups[-1] > 7.0, name

    w_sweep = results["b: clique width w_C"]
    assert w_sweep["clique_width=20"][-1] > 7.0
    # w = 10 at r = 2: small tables, overheads dominate (paper call-out).
    assert w_sweep["clique_width=10"][-1] < 6.0

    r_sweep = results["c: number of states r"]
    assert r_sweep["states=3"][-1] > r_sweep["states=2"][-1]

    k_sweep = results["d: avg children k"]
    for name, speedups in k_sweep.items():
        # Paper: "all of them achieved speedups of more than 7 using 8
        # cores" when k varies.
        assert speedups[-1] > 6.5, name
