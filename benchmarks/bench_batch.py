"""Throughput of batched evidence propagation vs one-case-at-a-time.

Runs the same set of evidence cases through
:meth:`repro.inference.engine.InferenceEngine.propagate_batch` twice —
once as B independent single-case propagations, once as one batched
propagation with a leading batch axis — and records cases/second for
each, per executor.  The batched run amortizes the per-task Python and
scheduling overhead across all B columns of every numpy kernel, which
is where the speedup comes from; the numeric work is identical, and the
gate below insists the *answers* are identical too.

Run as a script to record the table::

    PYTHONPATH=src python benchmarks/bench_batch.py

Results land in ``BENCH_batch.json`` at the repo root.  ``--smoke``
shrinks the workload for CI and turns the run into a gate: exit 1 if
batched throughput is below 2x single-case at B=16 on the serial
executor, or if any batched column disagrees with a fresh serial
single-case run at 1e-9.
"""

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from repro import InferenceEngine, random_network
from repro.sched.collaborative import CollaborativeExecutor
from repro.sched.serial import SerialExecutor

DEFAULT_OUTPUT = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_batch.json"
)

RTOL = 1e-9
ATOL = 1e-12


def _cases(num_vars, batch, seed):
    rng = np.random.default_rng(seed)
    cases = []
    for _ in range(batch):
        delta = {}
        for var in rng.choice(num_vars, size=2, replace=False):
            if rng.integers(2):
                delta[int(var)] = int(rng.integers(2))
            else:
                delta[int(var)] = rng.uniform(0.2, 1.0, size=2)
        cases.append(delta)
    return cases


def _verify(bn, cases, state, failures, label):
    """Every batched column vs a fresh serial single-case run."""
    variables = sorted(
        {v for clique in state.jt.cliques for v in clique.variables}
    )
    for i, case in enumerate(cases):
        oracle = InferenceEngine.from_network(bn)
        exact = oracle.query(case)
        for var in variables:
            if not np.allclose(
                state.marginal(var)[i], exact[var], rtol=RTOL, atol=ATOL
            ):
                failures.append(
                    f"{label}: batched case {i} disagrees with serial "
                    f"single-case run on var {var}"
                )
                return


def measure(bn, cases, executor_name, executor_factory, repeats, failures,
            verify):
    """One executor row: single-case loop vs one batched propagation."""
    engine = InferenceEngine.from_network(bn)
    batch = len(cases)

    # Warm both code paths (graph builds, caches of chunk plans) so the
    # timed repeats measure steady-state propagation only.
    engine.propagate_batch([cases[0]], executor=executor_factory())
    engine.propagate_batch(cases, executor=executor_factory())

    single_best = float("inf")
    for _ in range(repeats):
        executor = executor_factory()
        t0 = time.perf_counter()
        for case in cases:
            engine.propagate_batch([case], executor=executor)
        single_best = min(single_best, time.perf_counter() - t0)

    batched_best = float("inf")
    state = None
    for _ in range(repeats):
        executor = executor_factory()
        t0 = time.perf_counter()
        state = engine.propagate_batch(cases, executor=executor)
        batched_best = min(batched_best, time.perf_counter() - t0)

    if verify:
        _verify(bn, cases, state, failures, executor_name)

    single_cps = batch / single_best
    batched_cps = batch / batched_best
    row = {
        "executor": executor_name,
        "batch": batch,
        "single_seconds": single_best,
        "batched_seconds": batched_best,
        "single_cases_per_s": single_cps,
        "batched_cases_per_s": batched_cps,
        "speedup": batched_cps / single_cps if single_cps > 0 else 0.0,
    }
    print(
        f"{executor_name:>13s}  B={batch:<3d} "
        f"single {single_cps:8.1f} cases/s  "
        f"batched {batched_cps:8.1f} cases/s  "
        f"speedup {row['speedup']:5.2f}x"
    )
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark batched evidence propagation"
    )
    parser.add_argument("--variables", type=int, default=30)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument(
        "--batches", type=int, nargs="+", default=[4, 16, 64],
        help="batch sizes to sweep (16 is the gated size)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI workload and gate: serial batched throughput must "
        "be >= 2x single-case at B=16 and every column must match a "
        "fresh serial single-case run at 1e-9",
    )
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT))
    args = parser.parse_args(argv)

    num_vars = 20 if args.smoke else args.variables
    repeats = 3 if args.smoke else args.repeats
    batches = [16] if args.smoke else list(args.batches)
    executors = [
        ("serial", SerialExecutor),
        ("collaborative", lambda: CollaborativeExecutor(num_threads=2)),
    ]

    bn = random_network(
        num_vars, max_parents=3, edge_probability=0.6, seed=args.seed
    )
    failures = []
    rows = []
    for batch in batches:
        cases = _cases(num_vars, batch, args.seed + batch)
        for name, factory in executors:
            rows.append(
                measure(
                    bn, cases, name, factory, repeats, failures,
                    verify=args.smoke or batch == batches[0],
                )
            )

    gated = [
        r for r in rows if r["executor"] == "serial" and r["batch"] == 16
    ]
    if args.smoke:
        if not gated:
            failures.append("smoke run produced no serial B=16 row")
        elif gated[0]["speedup"] < 2.0:
            failures.append(
                f"batched throughput only {gated[0]['speedup']:.2f}x "
                "single-case at B=16 (gate: >= 2x)"
            )

    payload = {
        "variables": num_vars,
        "repeats": repeats,
        "seed": args.seed,
        "rows": rows,
        # Headline for dashboards: the gated configuration when present,
        # else the largest measured batch on the serial executor.
        "speedup_b16_serial": gated[0]["speedup"] if gated else None,
    }
    out = pathlib.Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"recorded -> {out}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if args.smoke:
        print(
            "gate ok: batched >= 2x single-case at B=16, every column "
            "exact vs serial"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
