"""Wall-clock benchmarks of the real executors.

These measure actual Python execution of evidence propagation — the
functional twins of the simulated policies.  The *threaded* executors are
GIL-bound, so their numbers quantify scheduling overhead; the
shared-memory **process** executor escapes the GIL and is measured for
genuine multicore speedup over the serial baseline.

Run as a script to record a serial-vs-process speedup curve::

    PYTHONPATH=src python benchmarks/bench_real_executors.py --workers 4

Results land in ``benchmarks/results/real_executors.json``.  ``--smoke``
shrinks the workload for CI: it verifies the process executor end-to-end
(beliefs equal to serial within 1e-9) on 2 workers in a few seconds.
"""

import argparse
import json
import os
import pathlib
import sys
import time

import numpy as np
import pytest

from repro.jt.generation import synthetic_tree
from repro.sched.baselines import DataParallelExecutor, LevelParallelExecutor
from repro.sched.collaborative import CollaborativeExecutor
from repro.sched.process import ProcessSharedMemoryExecutor
from repro.sched.serial import SerialExecutor
from repro.tasks.dag import build_task_graph
from repro.tasks.state import PropagationState


@pytest.fixture(scope="module")
def workload():
    tree = synthetic_tree(
        64, clique_width=8, states=2, avg_children=3, seed=77
    )
    tree.initialize_potentials(np.random.default_rng(77))
    graph = build_task_graph(tree)
    return tree, graph


def test_serial_executor_wall_clock(benchmark, workload):
    tree, graph = workload
    stats = benchmark(lambda: SerialExecutor().run(graph, PropagationState(tree)))
    assert stats.tasks_executed == graph.num_tasks


def test_collaborative_executor_wall_clock(benchmark, workload):
    tree, graph = workload
    executor = CollaborativeExecutor(num_threads=4, partition_threshold=4096)
    stats = benchmark(lambda: executor.run(graph, PropagationState(tree)))
    assert stats.tasks_executed == graph.num_tasks


def test_level_parallel_executor_wall_clock(benchmark, workload):
    tree, graph = workload
    executor = LevelParallelExecutor(num_threads=4)
    stats = benchmark(lambda: executor.run(graph, PropagationState(tree)))
    assert stats.tasks_executed == graph.num_tasks


def test_data_parallel_executor_wall_clock(benchmark, workload):
    tree, graph = workload
    executor = DataParallelExecutor(num_threads=4)
    stats = benchmark(lambda: executor.run(graph, PropagationState(tree)))
    assert stats.tasks_executed == graph.num_tasks


def test_process_executor_wall_clock(benchmark, workload):
    tree, graph = workload
    executor = ProcessSharedMemoryExecutor(
        num_workers=2, partition_threshold=16384
    )
    stats = benchmark(lambda: executor.run(graph, PropagationState(tree)))
    assert stats.tasks_executed == graph.num_tasks


def test_task_graph_construction_wall_clock(benchmark):
    tree = synthetic_tree(
        512, clique_width=15, states=2, avg_children=4, seed=3
    )
    graph = benchmark(lambda: build_task_graph(tree))
    assert graph.num_tasks == 8 * (tree.num_cliques - 1)


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="real multicore speedup needs at least 4 cores",
)
def test_process_speedup_on_multicore():
    """Acceptance: >= 1.5x over serial on 4 workers for a large tree."""
    record = measure_real_speedup(workers=4)
    assert record["beliefs_match"]
    assert record["speedup"] >= 1.5, record


# --------------------------------------------------------------------- #
# Script mode: record the serial-vs-process speedup curve
# --------------------------------------------------------------------- #


def _build_workload(num_cliques, clique_width, states, seed):
    tree = synthetic_tree(
        num_cliques,
        clique_width=clique_width,
        states=states,
        avg_children=3,
        width_jitter=1,
        seed=seed,
    )
    tree.initialize_potentials(np.random.default_rng(seed))
    return tree, build_task_graph(tree)


def _time_run(executor, graph, tree, repeats):
    best, state = float("inf"), None
    for _ in range(repeats):
        state = PropagationState(tree)
        t0 = time.perf_counter()
        executor.run(graph, state)
        best = min(best, time.perf_counter() - t0)
    return best, state


def measure_real_speedup(
    workers=4,
    num_cliques=24,
    clique_width=18,
    states=2,
    delta=262144,
    inline_threshold=8192,
    repeats=3,
    seed=2009,
):
    """Serial vs. process-executor wall clock on one large junction tree.

    Returns a JSON-serializable record including the speedup and whether
    the process executor's beliefs matched serial to 1e-9.
    """
    tree, graph = _build_workload(num_cliques, clique_width, states, seed)
    serial_s, ref = _time_run(SerialExecutor(), graph, tree, repeats)
    process = ProcessSharedMemoryExecutor(
        num_workers=workers,
        partition_threshold=delta,
        inline_threshold=inline_threshold,
    )
    process_s, state = _time_run(process, graph, tree, repeats)
    match = all(
        np.allclose(
            ref.potentials[i].values,
            state.potentials[i].values,
            rtol=1e-9,
            atol=1e-12,
        )
        for i in range(tree.num_cliques)
    )
    return {
        "workers": workers,
        "num_cliques": num_cliques,
        "clique_width": clique_width,
        "states": states,
        "partition_threshold": delta,
        "inline_threshold": inline_threshold,
        "num_tasks": graph.num_tasks,
        "cpu_count": os.cpu_count(),
        "serial_seconds": serial_s,
        "process_seconds": process_s,
        "speedup": serial_s / process_s if process_s > 0 else float("inf"),
        "beliefs_match": bool(match),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Record real serial-vs-process speedup"
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--cliques", type=int, default=24)
    parser.add_argument("--width", type=int, default=18)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI workload: verify correctness, report (not assert) speedup",
    )
    parser.add_argument(
        "--output",
        default=str(
            pathlib.Path(__file__).parent / "results" / "real_executors.json"
        ),
    )
    args = parser.parse_args(argv)

    if args.smoke:
        record = measure_real_speedup(
            workers=args.workers,
            num_cliques=12,
            clique_width=12,
            delta=2048,
            inline_threshold=512,
            repeats=1,
        )
    else:
        record = measure_real_speedup(
            workers=args.workers,
            num_cliques=args.cliques,
            clique_width=args.width,
            repeats=args.repeats,
        )

    print(
        f"serial {record['serial_seconds']:.3f}s | "
        f"process[{record['workers']}w] {record['process_seconds']:.3f}s | "
        f"speedup {record['speedup']:.2f}x on {record['cpu_count']} cores | "
        f"beliefs match: {record['beliefs_match']}"
    )
    out = pathlib.Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    existing = []
    if out.exists():
        try:
            existing = json.loads(out.read_text())
        except (json.JSONDecodeError, OSError):
            existing = []
    existing.append(record)
    out.write_text(json.dumps(existing, indent=2) + "\n")
    print(f"recorded -> {out}")

    if not record["beliefs_match"]:
        print("FAIL: process beliefs diverge from serial", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
