"""Wall-clock benchmarks of the real (threaded) executors.

These measure actual Python execution of evidence propagation — the
functional twins of the simulated policies.  Because of the GIL the
threaded numbers demonstrate overhead, not speedup; the figures' speedup
curves come from the simulator benchmarks.
"""

import numpy as np
import pytest

from repro.jt.generation import synthetic_tree
from repro.sched.baselines import DataParallelExecutor, LevelParallelExecutor
from repro.sched.collaborative import CollaborativeExecutor
from repro.sched.serial import SerialExecutor
from repro.tasks.dag import build_task_graph
from repro.tasks.state import PropagationState


@pytest.fixture(scope="module")
def workload():
    tree = synthetic_tree(
        64, clique_width=8, states=2, avg_children=3, seed=77
    )
    tree.initialize_potentials(np.random.default_rng(77))
    graph = build_task_graph(tree)
    return tree, graph


def test_serial_executor_wall_clock(benchmark, workload):
    tree, graph = workload
    stats = benchmark(lambda: SerialExecutor().run(graph, PropagationState(tree)))
    assert stats.tasks_executed == graph.num_tasks


def test_collaborative_executor_wall_clock(benchmark, workload):
    tree, graph = workload
    executor = CollaborativeExecutor(num_threads=4, partition_threshold=4096)
    stats = benchmark(lambda: executor.run(graph, PropagationState(tree)))
    assert stats.tasks_executed == graph.num_tasks


def test_level_parallel_executor_wall_clock(benchmark, workload):
    tree, graph = workload
    executor = LevelParallelExecutor(num_threads=4)
    stats = benchmark(lambda: executor.run(graph, PropagationState(tree)))
    assert stats.tasks_executed == graph.num_tasks


def test_data_parallel_executor_wall_clock(benchmark, workload):
    tree, graph = workload
    executor = DataParallelExecutor(num_threads=4)
    stats = benchmark(lambda: executor.run(graph, PropagationState(tree)))
    assert stats.tasks_executed == graph.num_tasks


def test_task_graph_construction_wall_clock(benchmark):
    tree = synthetic_tree(
        512, clique_width=15, states=2, avg_children=4, seed=3
    )
    graph = benchmark(lambda: build_task_graph(tree))
    assert graph.num_tasks == 8 * (tree.num_cliques - 1)
