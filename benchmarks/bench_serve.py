"""Throughput and tail latency of the concurrent inference service.

Drives a seeded multi-client closed-loop workload through
:class:`repro.serve.InferenceService` at increasing offered concurrency
and records, per concurrency level: throughput (served responses per
second), p50/p90/p99 latency (from the service tracer's serve spans),
the shed rate, and how much coalescing and caching absorbed.  One extra
scenario overloads a deliberately tiny admission queue to measure the
degraded-mode split (stale vs shed).

Run as a script to record the table::

    PYTHONPATH=src python benchmarks/bench_serve.py

Results land in ``BENCH_serve.json`` at the repo root.  ``--smoke``
shrinks the workload for CI and turns the run into a gate: exit 1 if any
response is silently wrong vs a serial oracle, if the service fails any
request in the fault-free workload, or if the overload scenario sheds
nothing (admission control not engaging).
"""

import argparse
import json
import pathlib
import random
import sys
import threading
import time

import numpy as np

from repro import InferenceEngine, random_network
from repro.jt.build import junction_tree_from_network
from repro.sched.collaborative import CollaborativeExecutor
from repro.serve import EngineSessionPool, InferenceService, QueryRequest

DEFAULT_OUTPUT = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_serve.json"
)

ATOL = 1e-9


def _build(num_vars, sessions, seed):
    bn = random_network(
        num_vars, max_parents=3, edge_probability=0.6, seed=seed
    )
    pool = EngineSessionPool.from_junction_tree(
        junction_tree_from_network(bn), sessions=sessions
    )
    return bn, pool


def _schedule(rng, num_vars, requests):
    out = []
    for _ in range(requests):
        delta = {
            rng.randrange(num_vars): rng.randrange(2)
            for _ in range(rng.randrange(3))
        }
        out.append(
            QueryRequest(
                delta=delta,
                vars=sorted(rng.sample(range(num_vars), 2)),
                deadline=60.0,
            )
        )
    return out


def _run_load(service, schedules):
    """Closed-loop clients: submit, wait, repeat.  Returns (req, resp)s."""
    results = []
    lock = threading.Lock()

    def client(cid):
        for request in schedules[cid]:
            response = service.submit(request).result(120.0)
            with lock:
                results.append((request, response))

    threads = [
        threading.Thread(target=client, args=(cid,))
        for cid in range(len(schedules))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return results


def _verify(bn, results, failures):
    """Exactness of every ok response against a fresh serial oracle."""
    oracle = InferenceEngine.from_network(bn)
    memo = {}
    for request, response in results:
        if response.status != "ok":
            continue
        sig = request.signature()
        if sig not in memo:
            oracle.set_evidence(request.evidence())
            oracle.propagate(incremental=False)
            memo[sig] = {v: oracle.marginal(v) for v in request.vars}
        else:
            for v in request.vars:
                if v not in memo[sig]:
                    oracle.set_evidence(request.evidence())
                    oracle.propagate(incremental=False)
                    memo[sig][v] = oracle.marginal(v)
        for v in request.vars:
            if not np.allclose(response.marginals[v], memo[sig][v],
                               atol=ATOL):
                failures.append(
                    f"wrong marginal for var {v} (tier {response.executor})"
                )


def measure_throughput(num_vars, sessions, clients, per_client, seed,
                       failures):
    """One concurrency level: clients closed-loop against a fresh service."""
    bn, pool = _build(num_vars, sessions, seed)
    service = InferenceService(
        pool,
        fallback=CollaborativeExecutor(num_threads=2),
        max_queue=max(2 * clients, 8),
        workers=sessions,
    )
    rng = random.Random(seed)
    schedules = [
        _schedule(random.Random(rng.randrange(1 << 30)), num_vars, per_client)
        for _ in range(clients)
    ]
    t0 = time.perf_counter()
    results = _run_load(service, schedules)
    elapsed = time.perf_counter() - t0
    report = service.drain()
    _verify(bn, results, failures)
    if report.failed:
        failures.append(
            f"{report.failed} failed responses in a fault-free workload"
        )
    return {
        "clients": clients,
        "requests": clients * per_client,
        "seconds": elapsed,
        "throughput_rps": report.served / elapsed if elapsed > 0 else 0.0,
        "served_ok": report.served_ok,
        "coalesced": report.coalesced,
        "cache_served": report.tier_counts.get("cache", 0),
        "shed": report.shed,
        "deadline_missed": report.deadline_missed,
        "failed": report.failed,
        "shed_rate": report.shed_rate,
        "latency": report.latency,
    }


def measure_overload(num_vars, sessions, seed, failures, bursts=120):
    """Tiny queue + open-loop burst: the degraded-mode split."""
    bn, pool = _build(num_vars, sessions, seed)
    service = InferenceService(
        pool,
        fallback=CollaborativeExecutor(num_threads=2),
        max_queue=2,
        workers=sessions,
    )
    rng = random.Random(seed + 1)
    # Prime the stale store so overload has a degraded answer to give.
    service.query(vars=list(range(num_vars)), deadline=60.0)
    futures = []
    for i in range(bursts):
        futures.append(service.submit(QueryRequest(
            delta={rng.randrange(num_vars): rng.randrange(2)},
            vars=[rng.randrange(num_vars)],
            deadline=60.0,
            max_staleness=60.0 if i % 2 == 0 else None,
        )))
    responses = [f.result(120.0) for f in futures]
    report = service.drain()
    statuses = {}
    for response in responses:
        statuses[response.status] = statuses.get(response.status, 0) + 1
    if report.shed == 0:
        failures.append(
            "overload burst shed nothing — admission control not engaging"
        )
    if any(r.status == "failed" for r in responses):
        failures.append("failed responses during overload burst")
    return {
        "bursts": bursts,
        "max_queue": 2,
        "statuses": statuses,
        "served_stale": report.served_stale,
        "shed": report.shed,
        "shed_rate": report.shed_rate,
        "queue_high_water": report.queue_high_water,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the concurrent inference service"
    )
    parser.add_argument("--variables", type=int, default=30)
    parser.add_argument("--sessions", type=int, default=4)
    parser.add_argument("--per-client", type=int, default=25)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI workload and gate: every ok response must match "
        "the serial oracle, no failed responses, overload must shed",
    )
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT))
    args = parser.parse_args(argv)

    per_client = 8 if args.smoke else args.per_client
    client_levels = (2, 4) if args.smoke else (1, 2, 4, 8)
    failures = []

    levels = []
    for clients in client_levels:
        row = measure_throughput(
            args.variables, args.sessions, clients, per_client, args.seed,
            failures,
        )
        levels.append(row)
        lat = row["latency"]
        print(
            f"{clients:2d} clients: {row['throughput_rps']:8.1f} resp/s | "
            f"p50 {lat.get('p50', 0)*1e3:7.2f} ms  "
            f"p99 {lat.get('p99', 0)*1e3:7.2f} ms | "
            f"coalesced {row['coalesced']:3d}  cache {row['cache_served']:3d}"
            f"  shed {row['shed']:3d}"
        )

    overload = measure_overload(
        args.variables, args.sessions, args.seed, failures,
        bursts=40 if args.smoke else 120,
    )
    print(
        f"overload (queue=2): {overload['statuses']} "
        f"(shed rate {overload['shed_rate']*100:.1f}%)"
    )

    payload = {
        "variables": args.variables,
        "sessions": args.sessions,
        "per_client": per_client,
        "seed": args.seed,
        "levels": levels,
        "overload": overload,
        # Headline row for dashboards: the highest concurrency level.
        "throughput_rps": levels[-1]["throughput_rps"],
        "p50_seconds": levels[-1]["latency"].get("p50", 0.0),
        "p99_seconds": levels[-1]["latency"].get("p99", 0.0),
        "shed_rate": overload["shed_rate"],
    }
    out = pathlib.Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"recorded -> {out}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if args.smoke:
        print("gate ok: every response exact or explicitly refused; "
              "overload shed as designed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
