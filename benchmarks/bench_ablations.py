"""Ablations of the design choices DESIGN.md calls out.

Not figures from the paper — these quantify the contribution of each
scheduler ingredient on Junction tree 1 (Xeon profile, 8 cores):

* partition threshold δ: off / coarse / default / fine,
* allocation heuristic in the threaded scheduler: min-workload vs
  round-robin vs random,
* rerooting on/off under the full scheduler.
"""

from common import record

import numpy as np

from repro.experiments import format_series_table
from repro.jt.generation import paper_tree, synthetic_tree
from repro.jt.rerooting import reroot_optimally
from repro.simcore.policies import CollaborativePolicy
from repro.simcore.profiles import XEON
from repro.tasks.dag import build_task_graph

CORES = (1, 2, 4, 8)


def test_partition_threshold_ablation(benchmark):
    def run():
        tree, _, _ = reroot_optimally(paper_tree(1))
        graph = build_task_graph(tree)
        rows = {}
        for label, delta in (
            ("off", None),
            ("2^22 (coarse)", 1 << 22),
            ("2^19 (default)", 1 << 19),
            ("2^16 (fine)", 1 << 16),
        ):
            policy = CollaborativePolicy(partition_threshold=delta)
            base = policy.simulate(graph, XEON, 1).makespan
            rows[label] = [
                base / policy.simulate(graph, XEON, p).makespan
                for p in CORES
            ]
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "ablation_partition_threshold",
        format_series_table(
            "Ablation — partition threshold δ, JT1 speedup vs #cores (Xeon)",
            "δ",
            CORES,
            rows,
        ),
    )
    # Partitioning must help at 8 cores on JT1's skewed table sizes.
    assert rows["2^19 (default)"][-1] > rows["off"][-1]


def test_rerooting_ablation(benchmark):
    def run():
        rows = {}
        policy = CollaborativePolicy()
        # A deliberately badly-rooted workload: JT1 rerooted at a leaf.
        tree = paper_tree(1)
        leaf_rooted_tree = tree
        from repro.jt.rerooting import reroot

        leaf = tree.leaves()[-1]
        leaf_rooted = reroot(tree, leaf)
        optimal, _, _ = reroot_optimally(tree)
        for label, t in (("leaf root", leaf_rooted), ("Algorithm 1", optimal)):
            graph = build_task_graph(t)
            base = policy.simulate(graph, XEON, 1).makespan
            rows[label] = [
                base / policy.simulate(graph, XEON, p).makespan
                for p in CORES
            ]
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "ablation_rerooting",
        format_series_table(
            "Ablation — rerooting under the full scheduler, JT1 (Xeon)",
            "root",
            CORES,
            rows,
        ),
    )
    assert rows["Algorithm 1"][-1] >= rows["leaf root"][-1] * 0.99


def test_fetch_priority_ablation(benchmark):
    """FIFO (the paper's Fetch module) vs critical-path-first ordering."""
    from repro.simcore.priority import CriticalPathPolicy

    def run():
        tree, _, _ = reroot_optimally(paper_tree(3))
        graph = build_task_graph(tree)
        rows = {}
        for label, policy in (
            ("fifo (paper)", CriticalPathPolicy("fifo")),
            ("weight-first", CriticalPathPolicy("weight")),
            ("upward-rank", CriticalPathPolicy("upward-rank")),
        ):
            base = policy.simulate(graph, XEON, 1).makespan
            rows[label] = [
                base / policy.simulate(graph, XEON, p).makespan
                for p in CORES
            ]
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "ablation_fetch_priority",
        format_series_table(
            "Ablation — Fetch-module ordering, JT3 speedup vs #cores (Xeon)",
            "fetch order",
            CORES,
            rows,
        ),
    )
    # Critical-path-first must not lose to FIFO on a span-bound tree.
    assert rows["upward-rank"][-1] >= rows["fifo (paper)"][-1] * 0.99


def test_lock_contention_ablation(benchmark):
    """Shared-lock collaborative scheduling vs work stealing (Section 8)."""
    from repro.simcore.policies import WorkStealingPolicy

    def run():
        tree, _, _ = reroot_optimally(paper_tree(1))
        graph = build_task_graph(tree)
        rows = {}
        for label, policy in (
            ("collaborative", CollaborativePolicy()),
            ("work-stealing", WorkStealingPolicy()),
        ):
            rows[label] = []
            for p in CORES:
                result = policy.simulate(graph, XEON, p)
                rows[label].append(result.sched_ratio() * 100)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "ablation_lock_contention",
        format_series_table(
            "Ablation — scheduling overhead %% vs #cores, JT1 (Xeon)",
            "scheduler",
            CORES,
            rows,
            fmt="{:.3f}",
        ),
    )
    # Stealing removes the contention term: overhead grows slower with P.
    assert rows["work-stealing"][-1] < rows["collaborative"][-1]


def test_allocation_heuristic_ablation(benchmark):
    """Threaded-scheduler ablation: allocation heuristics' load balance."""
    from repro.sched.collaborative import CollaborativeExecutor
    from repro.tasks.state import PropagationState

    tree = synthetic_tree(
        48, clique_width=6, states=2, avg_children=3, seed=9
    )
    tree.initialize_potentials(np.random.default_rng(9))
    graph = build_task_graph(tree)

    def run():
        rows = {}
        for allocation in ("min-workload", "round-robin", "random"):
            executor = CollaborativeExecutor(
                num_threads=4, allocation=allocation
            )
            state = PropagationState(tree)
            stats = executor.run(graph, state)
            rows[allocation] = [stats.load_imbalance(), stats.sched_ratio()]
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "ablation_allocation",
        format_series_table(
            "Ablation — Allocate-module heuristic (threaded, 4 threads)",
            "heuristic",
            ("imbalance", "sched_ratio"),
            rows,
            fmt="{:.3f}",
        ),
    )
    for allocation, (imbalance, ratio) in rows.items():
        assert imbalance >= 1.0
        assert 0.0 <= ratio <= 1.0
