"""Fig. 8 reproduction: load balance and scheduler overhead on JT1.

Paper shape: (a) per-thread computation times are nearly equal at every
thread count; (b) scheduling overhead stays below 0.9 % of execution time.
"""

from common import record

from repro.experiments import run_fig8

THREADS = tuple(range(1, 9))


def _format(result) -> str:
    lines = [
        "Fig. 8 — collaborative scheduler on Junction tree 1 "
        "(AMD Opteron-like)",
        "(a) per-thread computation time (s); (b) sched overhead ratio",
        f"{'P':>2}  {'per-thread compute times':<58}  {'imbal':>6}  {'ratio':>7}",
        "-" * 82,
    ]
    for p in THREADS:
        times = result.compute_per_thread[p]
        times_str = " ".join(f"{t:.3f}" for t in times)
        lines.append(
            f"{p:>2}  {times_str:<58}  "
            f"{result.load_imbalance[p]:>6.3f}  "
            f"{result.sched_ratio[p]*100:>6.3f}%"
        )
    return "\n".join(lines)


def test_fig8_load_balance_and_overhead(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig8(thread_counts=THREADS), rounds=1, iterations=1
    )
    record("fig8_load_balance", _format(result))

    for p in THREADS:
        # (a) near-equal workload across threads.
        assert result.load_imbalance[p] < 1.10, f"P={p}"
        # (b) the paper's bound: scheduling below 0.9 % of execution time.
        assert result.sched_ratio[p] < 0.009, f"P={p}"
        assert len(result.compute_per_thread[p]) == p
