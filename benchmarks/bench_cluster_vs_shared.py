"""Extension experiment: shared-memory multicore vs message-passing cluster.

Not a figure from the paper, but its motivating claim quantified: the same
task graph on N shared-memory cores (collaborative scheduler) vs N
single-core cluster nodes (subtree decomposition + separator messages, the
related-work approach of IPDPS 2008).  Communication cost keeps the
cluster clearly below the multicore, justifying the paper's platform
choice.
"""

from common import record

from repro.experiments import format_series_table
from repro.jt.generation import paper_tree
from repro.jt.rerooting import reroot_optimally
from repro.simcore.cluster import ClusterPolicy
from repro.simcore.policies import CollaborativePolicy
from repro.simcore.profiles import XEON
from repro.tasks.dag import build_task_graph

CORES = (1, 2, 4, 8)


def test_cluster_vs_shared_memory(benchmark):
    def run():
        tree, _, _ = reroot_optimally(paper_tree(1))
        graph = build_task_graph(tree)
        shared = CollaborativePolicy()
        shared_base = shared.simulate(graph, XEON, 1).makespan
        cluster = ClusterPolicy()
        cluster_base = cluster.simulate(graph, tree, 1).makespan
        return {
            "shared-memory cores": [
                shared_base / shared.simulate(graph, XEON, p).makespan
                for p in CORES
            ],
            "cluster nodes (GigE)": [
                cluster_base / cluster.simulate(graph, tree, p).makespan
                for p in CORES
            ],
        }

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "extension_cluster_vs_shared",
        format_series_table(
            "Extension — JT1 speedup: shared-memory multicore vs cluster",
            "platform",
            CORES,
            rows,
        ),
    )
    assert rows["shared-memory cores"][-1] > rows["cluster nodes (GigE)"][-1] + 1.0
    assert rows["cluster nodes (GigE)"][-1] > 2.0
