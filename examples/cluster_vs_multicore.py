#!/usr/bin/env python
"""Why multicore? Shared memory vs a message-passing cluster.

The paper's related work propagates evidence on clusters by decomposing
the junction tree into per-node subtrees (IPDPS 2008); the PACT 2009
paper argues shared-memory multicores dodge that communication cost.
This demo runs the same Junction tree 1 task graph on both simulated
platforms and shows where the cluster's time goes.

Run:  python examples/cluster_vs_multicore.py
"""

from repro.jt.generation import paper_tree
from repro.jt.rerooting import reroot_optimally
from repro.simcore import (
    GIGE_CLUSTER,
    XEON,
    ClusterPolicy,
    CollaborativePolicy,
    partition_tree,
)
from repro.simcore.cluster import count_cut_edges
from repro.tasks.dag import build_task_graph

UNITS = (1, 2, 4, 8)


def main():
    tree, _, _ = reroot_optimally(paper_tree(1))
    graph = build_task_graph(tree)
    print(
        f"Junction tree 1: {tree.num_cliques} cliques, "
        f"{graph.num_tasks} tasks"
    )

    shared = CollaborativePolicy()
    cluster = ClusterPolicy(GIGE_CLUSTER)
    shared_base = shared.simulate(graph, XEON, 1).makespan
    cluster_base = cluster.simulate(graph, tree, 1).makespan

    print(f"\n{'units':>5}  {'multicore Sp':>12}  {'cluster Sp':>10}  "
          f"{'cut edges':>9}")
    for n in UNITS:
        s_shared = shared_base / shared.simulate(graph, XEON, n).makespan
        s_cluster = cluster_base / cluster.simulate(graph, tree, n).makespan
        cuts = count_cut_edges(tree, partition_tree(tree, n))
        print(f"{n:>5}  {s_shared:>12.2f}  {s_cluster:>10.2f}  {cuts:>9}")

    result = cluster.simulate(graph, tree, 8)
    wait = result.total_sched()
    busy = result.total_compute()
    print(
        f"\nat 8 cluster nodes: {busy:.2f}s of compute vs {wait:.2f}s of "
        "accumulated message delay"
    )
    print(
        "every cut edge ships separator tables through the network — the "
        "communication the paper's shared-memory collaborative scheduler "
        "never pays."
    )


if __name__ == "__main__":
    main()
