#!/usr/bin/env python
"""Incremental evidence updates with the Shafer-Shenoy engine.

A monitoring scenario: sensor readings arrive one at a time and the
posterior of a root cause must be refreshed after each.  The lazy
Shafer-Shenoy engine only recomputes the messages invalidated by each new
observation; the counters show how much of the previous propagation is
reused compared to re-running from scratch.

Run:  python examples/incremental_updates.py
"""

import numpy as np

from repro import ShaferShenoyEngine, random_network
from repro.jt.build import junction_tree_from_network


def main():
    bn = random_network(
        30, cardinality=2, max_parents=2, edge_probability=0.7, seed=3
    )
    tree = junction_tree_from_network(bn)
    engine = ShaferShenoyEngine(tree)
    target = 0

    print(
        f"network: {bn.num_variables} variables -> "
        f"{tree.num_cliques} cliques "
        f"({2 * (tree.num_cliques - 1)} directed messages)"
    )
    print(f"\nstreaming observations, tracking P(X{target} = 1):")
    print(f"{'event':<22} {'P(X0=1)':>9} {'msgs computed':>14} {'reused':>7}")

    prior = engine.marginal(target)[1]
    print(
        f"{'(prior)':<22} {prior:>9.4f} "
        f"{engine.messages_computed:>14} {engine.messages_reused:>7}"
    )

    readings = [(25, 1), (12, 0), (7, 1), (25, 0), (18, 1)]
    for var, state in readings:
        before = engine.messages_computed
        engine.observe(var, state)
        p = engine.marginal(target)[1]
        fresh = engine.messages_computed - before
        print(
            f"{f'observe X{var}={state}':<22} {p:>9.4f} "
            f"{fresh:>14} {engine.messages_reused:>7}"
        )

    # Retract one observation — also incremental.
    before = engine.messages_computed
    engine.retract(12)
    p = engine.marginal(target)[1]
    print(
        f"{'retract X12':<22} {p:>9.4f} "
        f"{engine.messages_computed - before:>14} "
        f"{engine.messages_reused:>7}"
    )

    # Sanity: a cold engine with the same evidence agrees exactly.
    cold = ShaferShenoyEngine(tree)
    for var, state in {25: 0, 7: 1, 18: 1}.items():
        cold.observe(var, state)
    assert np.allclose(cold.marginal(target), engine.marginal(target))
    full = cold.messages_computed
    print(
        f"\ncold recomputation needed {full} messages; the incremental "
        "engine recomputed only the stale ones after each event."
    )


if __name__ == "__main__":
    main()
