#!/usr/bin/env python
"""Parallel scaling study: the paper's schedulers head-to-head.

Generates the paper's Junction tree 1 workload (512 cliques, average
width 20, binary variables, average 4 children), builds the task
dependency graph, and compares all scheduling policies on the simulated
Xeon-like platform — a miniature of the paper's Fig. 7 plus the PNL-like
centralized baseline of Fig. 6.

Run:  python examples/parallel_scaling.py
"""

from repro.jt.generation import paper_tree
from repro.jt.rerooting import reroot_optimally
from repro.simcore import (
    XEON,
    CentralizedPolicy,
    CollaborativePolicy,
    DataParallelPolicy,
    LevelParallelPolicy,
    OpenMPPolicy,
)
from repro.tasks.dag import build_task_graph

CORES = (1, 2, 4, 8)


def main():
    tree, root, weight = reroot_optimally(paper_tree(1))
    graph = build_task_graph(tree)
    print(
        f"Junction tree 1: {tree.num_cliques} cliques -> "
        f"{graph.num_tasks} tasks, rerooted at clique {root}"
    )
    print(
        f"total work {graph.total_work() / 1e6:.0f} Mops, "
        f"critical path {graph.critical_path_work() / 1e6:.0f} Mops "
        f"(parallelism {graph.total_work() / graph.critical_path_work():.0f}x)"
    )

    policies = [
        CollaborativePolicy(),
        CollaborativePolicy(partition_threshold=None),
        OpenMPPolicy(),
        DataParallelPolicy(),
        LevelParallelPolicy(),
        CentralizedPolicy(),
    ]
    labels = [
        "collaborative (proposed)",
        "collaborative, no partitioning",
        "OpenMP baseline",
        "data-parallel baseline",
        "level-parallel (extra baseline)",
        "centralized (PNL-like)",
    ]

    header = f"{'policy':<32}" + "".join(f"  P={p:<5}" for p in CORES)
    print("\nspeedup over each policy's own single-core run:")
    print(header)
    print("-" * len(header))
    for policy, label in zip(policies, labels):
        base = policy.simulate(graph, XEON, 1).makespan
        speedups = [
            base / policy.simulate(graph, XEON, p).makespan for p in CORES
        ]
        row = f"{label:<32}" + "".join(f"  {s:<6.2f}" for s in speedups)
        print(row)

    best = CollaborativePolicy().simulate(graph, XEON, 8)
    print(
        f"\ncollaborative @ 8 cores: load imbalance "
        f"{best.load_imbalance():.3f}, scheduling overhead "
        f"{best.sched_ratio() * 100:.2f}% (< 0.9% as in the paper)"
    )


if __name__ == "__main__":
    main()
