#!/usr/bin/env python
"""Temporal inference: tracking a hidden state with a DBN.

A two-state hidden Markov model (machine healthy/faulty, observed through
a noisy sensor) is unrolled into an ordinary Bayesian network and tracked
with junction-tree inference: filtering (current state), smoothing
(revising the past with later evidence) and Viterbi decoding via MPE.

Run:  python examples/hmm_tracking.py
"""

import numpy as np

from repro import InferenceEngine
from repro.bn.dbn import make_hmm

T = 10
OBS = [0, 0, 0, 1, 1, 0, 1, 1, 1, 1]  # 0 = sensor "ok", 1 = sensor "alarm"


def main():
    dbn = make_hmm(
        num_states=2,          # 0 = healthy, 1 = faulty
        num_observations=2,
        initial=np.array([0.95, 0.05]),
        transition=np.array([[0.9, 0.1],   # healthy tends to stay healthy
                             [0.05, 0.95]]),  # faults persist
        emission=np.array([[0.9, 0.1],    # healthy rarely alarms
                           [0.25, 0.75]]),  # faulty usually alarms
    )
    bn = dbn.unroll(T)
    print(
        f"HMM unrolled to {T} slices -> {bn.num_variables}-variable network"
    )

    engine = InferenceEngine.from_network(bn)
    engine.set_evidence(
        {dbn.variable_at(1, t): OBS[t] for t in range(T)}
    )
    engine.propagate()

    print("\nsensor:  " + "".join(f"    {'A' if o else '.'}" for o in OBS))
    smoothed = [
        engine.marginal(dbn.variable_at(0, t))[1] for t in range(T)
    ]
    print(
        "P(fault):" + "".join(f" {p:4.2f}" for p in smoothed)
        + "   (smoothed, given all 10 readings)"
    )

    assignment, prob = engine.mpe()
    decoded = [assignment[dbn.variable_at(0, t)] for t in range(T)]
    print(
        "decoded: "
        + "".join(f"    {'F' if s else '.'}" for s in decoded)
        + "   (most probable state path)"
    )

    # Filtering: the fault probability *at the time*, without hindsight.
    filtered = []
    for t in range(T):
        engine.set_evidence(
            {dbn.variable_at(1, u): OBS[u] for u in range(t + 1)}
        )
        engine.propagate()
        filtered.append(engine.marginal(dbn.variable_at(0, t))[1])
    print(
        "P(fault):" + "".join(f" {p:4.2f}" for p in filtered)
        + "   (filtered, readings up to t only)"
    )
    print(
        "\nsmoothing pulls the fault onset earlier than filtering — "
        "later alarms revise the past."
    )


if __name__ == "__main__":
    main()
