#!/usr/bin/env python
"""Medical diagnosis on the classic "Asia" chest-clinic network.

The network is from Lauritzen & Spiegelhalter (1988) — reference [1] of
the reproduced paper, the same work that introduced junction-tree evidence
propagation.  Eight binary variables (state 1 = "yes"):

    0 asia   — recent visit to Asia          4 bronc  — bronchitis
    1 tub    — tuberculosis                  5 either — tub or lung cancer
    2 smoke  — smoker                        6 xray   — abnormal X-ray
    3 lung   — lung cancer                   7 dysp   — dyspnoea

Run:  python examples/medical_diagnosis.py
"""

import numpy as np

from repro import BayesianNetwork, InferenceEngine, PotentialTable

ASIA, TUB, SMOKE, LUNG, BRONC, EITHER, XRAY, DYSP = range(8)
NAMES = ["asia", "tub", "smoke", "lung", "bronc", "either", "xray", "dysp"]


def build_asia_network() -> BayesianNetwork:
    bn = BayesianNetwork([2] * 8)
    bn.add_edge(ASIA, TUB)
    bn.add_edge(SMOKE, LUNG)
    bn.add_edge(SMOKE, BRONC)
    bn.add_edge(TUB, EITHER)
    bn.add_edge(LUNG, EITHER)
    bn.add_edge(EITHER, XRAY)
    bn.add_edge(EITHER, DYSP)
    bn.add_edge(BRONC, DYSP)

    def cpt(var, parents, rows):
        scope = list(parents) + [var]
        cards = [2] * len(scope)
        bn.set_cpt(var, PotentialTable(scope, cards, np.array(rows)))

    cpt(ASIA, [], [0.99, 0.01])
    cpt(SMOKE, [], [0.50, 0.50])
    cpt(TUB, [ASIA], [[0.99, 0.01], [0.95, 0.05]])
    cpt(LUNG, [SMOKE], [[0.99, 0.01], [0.90, 0.10]])
    cpt(BRONC, [SMOKE], [[0.70, 0.30], [0.40, 0.60]])
    # P(either | tub, lung) is a deterministic OR.
    cpt(
        EITHER,
        [TUB, LUNG],
        [[[1.0, 0.0], [0.0, 1.0]], [[0.0, 1.0], [0.0, 1.0]]],
    )
    cpt(XRAY, [EITHER], [[0.95, 0.05], [0.02, 0.98]])
    cpt(
        DYSP,
        [EITHER, BRONC],
        [[[0.90, 0.10], [0.20, 0.80]], [[0.30, 0.70], [0.10, 0.90]]],
    )
    return bn


def report(engine, label):
    print(f"\n{label}")
    for var in (TUB, LUNG, BRONC):
        p_yes = engine.marginal(var)[1]
        print(f"  P({NAMES[var]:5s} = yes) = {p_yes:.4f}")


def main():
    bn = build_asia_network()
    engine = InferenceEngine.from_network(bn)
    print(
        f"Asia network -> junction tree with {engine.jt.num_cliques} cliques"
    )

    engine.propagate()
    report(engine, "prior (no evidence)")

    # A smoking patient with dyspnoea walks in.
    engine.set_evidence({SMOKE: 1, DYSP: 1})
    engine.propagate()
    report(engine, "evidence: smoker with dyspnoea")

    # The X-ray comes back abnormal.
    engine.observe(XRAY, 1)
    engine.propagate()
    report(engine, "evidence: + abnormal X-ray")

    # ... but the patient also recently visited Asia.
    engine.observe(ASIA, 1)
    engine.propagate()
    report(engine, "evidence: + visited Asia")
    print(f"\nP(all evidence) = {engine.likelihood():.6f}")

    # Sanity: the engine agrees with brute-force enumeration.
    expected = bn.marginal_bruteforce(
        LUNG, {SMOKE: 1, DYSP: 1, XRAY: 1, ASIA: 1}
    )
    assert np.allclose(engine.marginal(LUNG), expected)
    print("verified against brute-force enumeration.")

    # Which finding drives the lung-cancer posterior? Leave-one-out
    # sensitivity over the evidence set (see repro.inference.sensitivity).
    from repro.inference.sensitivity import rank_findings

    evidence = {SMOKE: 1, DYSP: 1, XRAY: 1, ASIA: 1}
    ranked = rank_findings(engine.jt, LUNG, evidence)
    print("\nevidence ranked by impact on P(lung):")
    for var, impact in ranked:
        print(f"  {NAMES[var]:5s}  leave-one-out KL = {impact:.4f}")


if __name__ == "__main__":
    main()
