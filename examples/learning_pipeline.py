#!/usr/bin/env python
"""Closing the loop: sample -> learn -> exact inference -> validate.

Draws data from a ground-truth Bayesian network with forward sampling,
refits the CPTs by smoothed maximum likelihood on the known structure,
and compares the learned model's junction-tree posteriors against the
ground truth and against likelihood-weighting estimates.

Run:  python examples/learning_pipeline.py
"""

import numpy as np

from repro import BayesianNetwork, InferenceEngine, random_network
from repro.bn.learning import fit_cpts, log_likelihood
from repro.bn.sampling import forward_sample, likelihood_weighting


def main():
    truth = random_network(
        12, cardinality=2, max_parents=3, edge_probability=0.6, seed=7
    )
    print(f"ground truth: {truth.num_variables} variables, "
          f"{len(truth.edges())} edges")

    data = forward_sample(truth, 5000, seed=7)
    print(f"sampled {len(data)} complete records")

    learned = BayesianNetwork(list(truth.cardinalities))
    for parent, child in truth.edges():
        learned.add_edge(parent, child)
    fit_cpts(learned, data, alpha=1.0)
    print(f"log-likelihood of data under learned model: "
          f"{log_likelihood(learned, data):,.0f}")

    evidence = {0: 1, 5: 0}
    target = 9

    truth_engine = InferenceEngine.from_network(truth)
    truth_engine.set_evidence(evidence)
    truth_engine.propagate()
    exact_truth = truth_engine.marginal(target)

    learned_engine = InferenceEngine.from_network(learned)
    learned_engine.set_evidence(evidence)
    learned_engine.propagate()
    exact_learned = learned_engine.marginal(target)

    approx = likelihood_weighting(
        truth, target, evidence, num_samples=4000, seed=7
    )

    print(f"\nposterior P(X{target} | X0=1, X5=0):")
    print(f"  ground-truth model (exact JT):  {np.round(exact_truth, 4)}")
    print(f"  learned model      (exact JT):  {np.round(exact_learned, 4)}")
    print(f"  likelihood weighting estimate:  {np.round(approx, 4)}")
    gap = float(np.abs(exact_truth - exact_learned).max())
    print(f"\nlearned-vs-truth max gap: {gap:.4f} "
          f"({'OK' if gap < 0.05 else 'needs more data'})")


if __name__ == "__main__":
    main()
