#!/usr/bin/env python
"""Junction-tree rerooting for critical-path minimization (paper Section 4).

Builds the Fig. 4 template tree — b + 1 chains meeting at a junction
clique, rooted at the far end of branch 0 — runs Algorithm 1 to find the
optimal root, and shows the critical-path weight and the simulated
parallel propagation time before and after rerooting.

Run:  python examples/rerooting_demo.py
"""

from repro import template_tree
from repro.jt.rerooting import (
    critical_path_weight,
    reroot,
    select_root,
    select_root_bruteforce,
)
from repro.simcore import XEON, CollaborativePolicy
from repro.tasks.dag import build_task_graph


def main():
    b = 4
    tree = template_tree(b, num_cliques=512, clique_width=15)
    print(
        f"template tree: {tree.num_cliques} cliques, {b + 1} branches, "
        f"rooted at the far end of branch 0"
    )

    before = critical_path_weight(tree)
    new_root, after = select_root(tree)
    brute_root, brute_weight = select_root_bruteforce(tree)
    print(f"critical path weight, original root : {before:,.0f}")
    print(f"critical path weight, Algorithm 1   : {after:,.0f}")
    print(f"Algorithm 1 picked clique {new_root} "
          f"(junction clique = {tree.num_cliques - 1})")
    assert after == brute_weight, "Algorithm 1 disagrees with brute force"
    print("matches the O(N^2) brute-force search.")

    rerooted = reroot(tree, new_root)
    policy = CollaborativePolicy(partition_threshold=None)
    graph_orig = build_task_graph(tree)
    graph_new = build_task_graph(rerooted)
    print("\nsimulated evidence propagation (Xeon-like, partitioning off):")
    print(f"{'cores':>5}  {'original (ms)':>13}  {'rerooted (ms)':>13}  {'Sp':>5}")
    for p in (1, 2, 4, 8):
        t0 = policy.simulate(graph_orig, XEON, p).makespan * 1e3
        t1 = policy.simulate(graph_new, XEON, p).makespan * 1e3
        print(f"{p:>5}  {t0:>13.2f}  {t1:>13.2f}  {t0 / t1:>5.2f}")
    print("\nSp saturates at 2 once the core count exceeds b, "
          "as in the paper's Fig. 5.")


if __name__ == "__main__":
    main()
