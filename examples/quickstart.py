#!/usr/bin/env python
"""Quickstart: exact inference on a random Bayesian network.

Builds a random 20-variable network, compiles it to a junction tree
(moralize -> triangulate -> clique tree), reroots it with Algorithm 1,
and answers posterior queries under evidence — serially and with the
collaborative parallel scheduler, checking they agree.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CollaborativeExecutor, InferenceEngine, random_network


def main():
    # A random 20-variable binary network.
    bn = random_network(
        num_variables=20,
        cardinality=2,
        max_parents=3,
        edge_probability=0.6,
        seed=2009,
    )
    print(f"network: {bn.num_variables} variables, {len(bn.edges())} edges")

    # Compile to a junction tree and reroot for the shortest critical path.
    engine = InferenceEngine.from_network(bn)
    print(
        f"junction tree: {engine.jt.num_cliques} cliques, "
        f"{engine.task_graph.num_tasks} propagation tasks, "
        f"root clique {engine.jt.root}"
    )

    # Prior marginal of variable 7.
    engine.propagate()
    prior = engine.marginal(7)
    print(f"P(X7)              = {np.round(prior, 4)}")

    # Posterior after observing two variables.
    engine.set_evidence({3: 1, 12: 0})
    engine.propagate()
    posterior = engine.marginal(7)
    print(f"P(X7 | X3=1,X12=0) = {np.round(posterior, 4)}")
    print(f"P(evidence)        = {engine.likelihood():.6f}")

    # The same query through the parallel collaborative scheduler
    # (Algorithm 2 of the paper) gives bitwise-identical results.
    engine.propagate(CollaborativeExecutor(num_threads=4, partition_threshold=4096))
    parallel = engine.marginal(7)
    assert np.allclose(parallel, posterior)
    stats = engine.last_stats
    print(
        f"parallel run: {stats.num_threads} threads, "
        f"{stats.tasks_executed} tasks "
        f"({stats.tasks_partitioned} partitioned), "
        f"load imbalance {stats.load_imbalance():.3f}"
    )
    print("serial and parallel posteriors match.")


if __name__ == "__main__":
    main()
