#!/usr/bin/env python
"""Collaborative scheduling of an arbitrary DAG computation (Section 8).

The paper's conclusion proposes its scheduler "for a class of DAG
structured computations in the many-core era".  Here the generalized
executor runs a small data-analysis pipeline — load, clean, two feature
extractions in parallel, model fits, and a final report — with the same
collaborative discipline used for evidence propagation.

Run:  python examples/generic_dag_scheduling.py
"""

import numpy as np

from repro.sched.generic import run_dag


def main():
    rng = np.random.default_rng(0)

    nodes = {
        "load": lambda: rng.normal(size=(500, 4)),
        "clean": lambda raw: raw - raw.mean(axis=0),
        "feature_mean": lambda clean: clean.mean(axis=1),
        "feature_norm": lambda clean: np.linalg.norm(clean, axis=1),
        "fit_mean": lambda f: (f.mean(), f.std()),
        "fit_norm": lambda f: (f.mean(), f.std()),
        "report": lambda a, b: (
            f"mean-feature ~ N({a[0]:.3f}, {a[1]:.3f}); "
            f"norm-feature ~ N({b[0]:.3f}, {b[1]:.3f})"
        ),
    }
    deps = {
        "clean": ["load"],
        "feature_mean": ["clean"],
        "feature_norm": ["clean"],
        "fit_mean": ["feature_mean"],
        "fit_norm": ["feature_norm"],
        "report": ["fit_mean", "fit_norm"],
    }
    weights = {"load": 5.0, "clean": 3.0}  # hints for load balancing

    results = run_dag(nodes, deps, num_threads=4, weights=weights)
    print("pipeline stages executed:", ", ".join(sorted(nodes)))
    print("report:", results["report"])


if __name__ == "__main__":
    main()
