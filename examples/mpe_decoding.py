#!/usr/bin/env python
"""Most-probable-explanation decoding over a noisy channel.

A hidden Markov chain of 12 binary "transmitted bits" (each bit tends to
repeat the previous one) is observed through a noisy channel that flips
each bit with 20% probability.  MPE inference over the junction tree
recovers the most probable transmitted sequence from the received one —
Viterbi decoding expressed as max-product evidence propagation, built on
the same junction-tree substrate as the paper's sum-product propagation.

Run:  python examples/mpe_decoding.py
"""

import numpy as np

from repro import BayesianNetwork, InferenceEngine, PotentialTable

BITS = 12
STAY = 0.85  # P(bit == previous bit)
NOISE = 0.2  # channel flip probability


def build_channel_model() -> BayesianNetwork:
    """Variables 0..BITS-1: transmitted; BITS..2*BITS-1: received."""
    bn = BayesianNetwork([2] * (2 * BITS))
    for i in range(1, BITS):
        bn.add_edge(i - 1, i)
    for i in range(BITS):
        bn.add_edge(i, BITS + i)

    bn.set_cpt(0, PotentialTable([0], [2], np.array([0.5, 0.5])))
    repeat = np.array([[STAY, 1 - STAY], [1 - STAY, STAY]])
    for i in range(1, BITS):
        bn.set_cpt(i, PotentialTable([i - 1, i], [2, 2], repeat))
    flip = np.array([[1 - NOISE, NOISE], [NOISE, 1 - NOISE]])
    for i in range(BITS):
        bn.set_cpt(
            BITS + i, PotentialTable([i, BITS + i], [2, 2], flip)
        )
    return bn


def main():
    rng = np.random.default_rng(1)
    # Ground truth: two long runs, the regime the chain prior favours.
    transmitted = [1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0]
    received = [
        bit ^ int(rng.random() < NOISE) for bit in transmitted
    ]

    bn = build_channel_model()
    engine = InferenceEngine.from_network(bn)
    engine.set_evidence({BITS + i: received[i] for i in range(BITS)})

    assignment, prob = engine.mpe()
    decoded = [assignment[i] for i in range(BITS)]

    def row(label, bits):
        return f"{label:<12} " + " ".join(str(b) for b in bits)

    print(row("transmitted", transmitted))
    print(row("received", received))
    print(row("decoded", decoded))
    errors_raw = sum(a != b for a, b in zip(transmitted, received))
    errors_dec = sum(a != b for a, b in zip(transmitted, decoded))
    print(f"\nchannel errors: {errors_raw}, decoding errors: {errors_dec}")
    print(f"P(decoded sequence, received bits) = {prob:.3e}")

    # Posterior bit-wise confidence from sum-product propagation.
    engine.propagate()
    confidence = [engine.marginal(i)[decoded[i]] for i in range(BITS)]
    print(row("confidence", [f"{c:.2f}" for c in confidence]))


if __name__ == "__main__":
    main()
